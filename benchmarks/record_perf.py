#!/usr/bin/env python
"""Standalone performance recorder: writes ``BENCH_engine.json``,
``BENCH_service.json``, ``BENCH_prepared.json``, ``BENCH_stream.json``,
``BENCH_shard.json``, ``BENCH_resilience.json``, ``BENCH_columnar.json``,
``BENCH_planner.json`` and ``BENCH_serve.json``, and (with
``--check-against``) gates regressions against committed baselines.

Nine suites, selected with ``--suite`` (default: all):

* ``engine`` — runs the indexed CSP/join engine and the retained naive scan
  path on the medium configurations of ``bench_scaling_database`` (the fixed
  two-hop query over growing Erdős–Rényi databases) and
  ``bench_star_queries`` (the footnote-4 star family), verifies that both
  engines — and, on the smallest configuration, the independent brute-force
  counter — produce identical counts, and appends a timestamped speedup
  record to ``BENCH_engine.json``.
* ``service`` — drives a ≥50-query mixed CQ/DCQ/ECQ workload through
  :class:`repro.service.CountingService` serially and with the process-pool
  executor, verifies that every service estimate equals the direct library
  call with the same derived seed (and that serial and parallel execution
  agree), resubmits the batch to demonstrate result-cache hits, and appends
  the throughput record to ``BENCH_service.json`` (including ``cpu_count`` —
  on single-core machines the parallel/serial ratio is bounded by 1 and the
  record says so).
* ``prepared`` — a repeated-shape batch of alpha-renamed copies of fixed CQ /
  DCQ shapes: measures the width/decomposition compilation cost per-call
  (a fresh, uncached ``PreparedQuery`` per copy — the pre-compilation-layer
  behaviour) versus prepared-shared (every copy hits the one process-wide
  cache entry, asserted via the cache and artifact counters), verifies that
  registry-dispatched estimates equal the direct library calls under the
  same seeds, and appends the speedup record to ``BENCH_prepared.json``.
* ``stream`` — live updates through :mod:`repro.stream`: a touched-relation
  mutation loop where a subscribed exact count is delta-patched each step
  and verified bit-identical against a from-scratch recount of the same
  state (the recount is timed as the baseline), an untouched-relation loop
  where reads must be served from the stored fingerprint at near-zero cost,
  and an approximate-handle check that a refreshed ``LiveCount`` equals the
  direct registry call with the same derived seed.  Appends the
  incremental-vs-recount speedup record to ``BENCH_stream.json``.
* ``shard`` — horizontally sharded counting through :mod:`repro.shard`: a
  multi-component query over relation-partitioned shards is counted sharded
  (per-shard tasks fanned across the process pool, combined by product) and
  unsharded, verified bit-identical, and the shard-parallel speedup recorded;
  a hash-by-tuple union-decomposition count is verified bit-identical too.
  Appends to ``BENCH_shard.json``.
* ``resilience`` — deterministic fault injection through
  :mod:`repro.resilience`: a mixed batch run fault-free and again with every
  task crashing once (retried under the same derived seed), verified
  bit-identical, recording the faulted/clean ``throughput_retention`` ratio;
  plus the recovery latency of a permanently dead shard falling back to a
  merged-view recount.  Appends to ``BENCH_resilience.json``.
* ``columnar`` — the vectorized NumPy engine (``engine="columnar"``) against
  the pure-Python indexed engine on its two bulk kernels: the generalized-
  arc-consistency propagation fixpoint over Erdős–Rényi databases (the
  propagated domains must be identical set-for-set) and the column-wise
  join pipeline behind ``bag_solutions`` (the solution sets must be
  identical).  Exact counts are additionally verified identical across all
  three engines on smaller instances.  The gated headline is the minimum
  propagation speedup.  Appends to ``BENCH_columnar.json``; skipped with a
  notice when NumPy is unavailable (the columnar engine then falls back to
  indexed, so there is nothing to measure).
* ``planner`` — the observed-cost adaptive planner: on a database just past
  the dichotomy's small-instance threshold (static pick: the FPRAS) the
  profile store is warmed with ``min_observations`` runs per candidate
  scheme, and the same request stream is timed through a static service and
  the warmed adaptive one (which learns the exact counter is far cheaper
  there).  Verifies cold-store plans byte-identical to static plans, plan
  purity across persisted-snapshot replays, estimates bit-identical to
  direct scheme execution under the same derived seeds, and that every
  adaptive execution is scored predicted-vs-actual.  The gated headline is
  the adaptive-over-static speedup.  Appends to ``BENCH_planner.json``.
* ``serve`` — the HTTP/JSON front-end (:mod:`repro.serve`): a closed-loop
  mixed workload driven by N concurrent :class:`ServeClient` threads against
  a resident in-thread server, recording p50/p95 request latency and
  throughput, with every served estimate verified bit-identical to a twin
  in-process service under the same seeds; then a barrier-released herd of
  identical requests against a latency-injected service, verifying the
  underlying count executes exactly once and every herd member gets the
  same bits.  The gated headline is ``coalescing_hit_rate`` =
  (herd − executions) / (herd − 1) — 1.0 when coalescing works, 0.0 if
  every request were to execute.  Appends to ``BENCH_serve.json``.

Usage::

    python benchmarks/record_perf.py                    # all suites, full
    python benchmarks/record_perf.py --smoke            # budgeted subset
    python benchmarks/record_perf.py --suite service    # one suite
    python benchmarks/record_perf.py --smoke \\
        --check-against benchmarks/baselines/baselines.json   # CI perf gate

``--check-against`` compares each suite's headline *speedup ratio* (machine-
relative, so shared CI runners don't flake on absolute times) against the
committed baseline and fails when it regresses beyond the tolerance
(``baseline / tolerance``).  Exits non-zero if any verification fails or any
gated metric regresses.  Installed environments get the pytest-benchmark
harness via the ``bench`` extra (``pip install .[bench]``); this script
intentionally has no dependency beyond the package itself.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.applications import star_instance  # noqa: E402
from repro.core import count_answers_exact  # noqa: E402
from repro.queries.builders import path_query  # noqa: E402
from repro.workloads import database_from_graph, erdos_renyi_graph  # noqa: E402

TWO_HOP = path_query(2, free_endpoints_only=True)
STAR_GRAPH = erdos_renyi_graph(12, 0.3, rng=17)


def _scaling_config(size: int):
    database = database_from_graph(erdos_renyi_graph(size, 0.3, rng=size))
    return f"bench_scaling_database|two-hop|U={size}", TWO_HOP, database


def _star_config(k: int):
    query, database = star_instance(STAR_GRAPH, k)
    return f"bench_star_queries|star k={k}|U={STAR_GRAPH.number_of_nodes()}", query, database


def _configs(smoke: bool):
    if smoke:
        return [_scaling_config(14), _star_config(3)]
    return [_scaling_config(14), _scaling_config(20), _star_config(3), _star_config(4)]


def _best_of(call, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def _append_record(out_path: Path, record: dict) -> None:
    existing = []
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
            if not isinstance(existing, list):
                existing = [existing]
        except json.JSONDecodeError:
            existing = []
    existing.append(record)
    out_path.write_text(json.dumps(existing, indent=2) + "\n")


def _append_trajectory(
    out_path: Path, observed: dict, timestamp: str, mode: str
) -> None:
    """Append one JSON line per suite to the cumulative trajectory log.

    Each suite contributes its single headline metric (a machine-relative
    speedup/retention ratio), so the file stays a flat, greppable history of
    how the repo's performance evolved across runs:

        {"suite": "stream", "metric": "touched_speedup", "speedup": 12.4,
         "timestamp": "...", "mode": "smoke"}
    """
    lines = []
    for suite, metrics in sorted(observed.items()):
        for metric, value in sorted(metrics.items()):
            lines.append(
                json.dumps(
                    {
                        "suite": suite,
                        "metric": metric,
                        "speedup": value,
                        "timestamp": timestamp,
                        "mode": mode,
                    },
                    sort_keys=True,
                )
            )
    if not lines:
        return
    with out_path.open("a") as handle:
        handle.write("\n".join(lines) + "\n")
    print(
        f"[record_perf] appended {len(lines)} trajectory line(s) to {out_path}"
    )


def run_engine(smoke: bool, out_path: Path, repeats: int, budget_seconds: float) -> tuple:
    started = time.perf_counter()
    results = []
    failures = 0
    for name, query, database in _configs(smoke):
        if smoke and time.perf_counter() - started > budget_seconds:
            print(f"[record_perf] smoke budget of {budget_seconds:.0f}s reached; stopping")
            break
        naive_count = count_answers_exact(query, database, engine="naive")
        indexed_count = count_answers_exact(query, database, engine="indexed")
        bruteforce_count = None
        if len(query.variables) <= 3 and len(database.universe) <= 14:
            bruteforce_count = count_answers_exact(query, database, method="bruteforce")
        counts_match = naive_count == indexed_count and (
            bruteforce_count is None or bruteforce_count == indexed_count
        )
        if not counts_match:
            failures += 1
        naive_time = _best_of(
            lambda: count_answers_exact(query, database, engine="naive"), repeats
        )
        indexed_time = _best_of(
            lambda: count_answers_exact(query, database, engine="indexed"), repeats
        )
        speedup = naive_time / indexed_time if indexed_time > 0 else float("inf")
        results.append(
            {
                "config": name,
                "count": naive_count,
                "bruteforce_count": bruteforce_count,
                "counts_match": counts_match,
                "naive_seconds": round(naive_time, 6),
                "indexed_seconds": round(indexed_time, 6),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"[record_perf] {name}: count={naive_count} "
            f"naive={naive_time * 1000:.1f}ms indexed={indexed_time * 1000:.1f}ms "
            f"speedup={speedup:.1f}x counts_match={counts_match}"
        )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "engine": "indexed",
        "baseline": "naive",
        "configs": results,
        "min_speedup": round(min((r["speedup"] for r in results), default=0.0), 2),
        "all_counts_match": failures == 0,
    }
    _append_record(out_path, record)
    print(f"[record_perf] appended record to {out_path} (min speedup {record['min_speedup']}x)")
    return (1 if failures else 0), {"min_speedup": record["min_speedup"]}


# --------------------------------------------------------------- service suite
def _service_workload(smoke: bool):
    """A ≥50-query mixed workload.  The planner sends most queries to the
    (fast, error-free) exact scheme — the right call on databases this small —
    and a fixed subset is forced onto each approximation scheme so the bench
    also exercises and verifies the FPRAS/FPTRAS paths end-to-end."""
    from repro.service import CountRequest, mixed_query_workload, workload_database

    num_queries = 50 if smoke else 60
    database = workload_database(
        num_vertices=10 if smoke else 12, edge_probability=0.3, rng=29
    )
    queries = mixed_query_workload(
        num_queries, num_variables=(3, 4) if smoke else (3, 5), rng=41
    )
    # The workload cycles CQ, DCQ, DCQ, ECQ — force one of each class onto its
    # approximation scheme (indices chosen by class = index mod 4).
    forced = {8: "fpras_cq", 9: "fptras_dcq", 11: "fptras_ecq"}
    if not smoke:
        forced.update({32: "fpras_cq", 33: "fptras_dcq", 35: "fptras_ecq"})
    requests = [
        CountRequest(query=query, method=forced.get(index))
        for index, query in enumerate(queries)
    ]
    return requests, database


def run_service(smoke: bool, out_path: Path) -> tuple:
    from repro.service import CountingService, ServiceConfig, execute_scheme
    from repro.util.rng import derive_seed

    epsilon, delta = (0.6, 0.3) if smoke else (0.5, 0.25)
    master_seed = 2022
    requests, database = _service_workload(smoke)

    def fresh_service(executor: str) -> CountingService:
        return CountingService(
            database,
            ServiceConfig(epsilon=epsilon, delta=delta, executor=executor,
                          max_workers=max(2, os.cpu_count() or 1)),
        )

    serial_service = fresh_service("serial")
    serial = serial_service.count_batch(requests, seed=master_seed)
    print(
        f"[record_perf] service serial: {len(serial.results)} queries in "
        f"{serial.wall_seconds:.2f}s ({serial.throughput_qps:.1f} q/s)"
    )

    parallel_service = fresh_service("process")
    parallel = parallel_service.count_batch(requests, seed=master_seed)
    print(
        f"[record_perf] service parallel ({parallel.executed_executor}, "
        f"{parallel.max_workers} workers): {len(parallel.results)} queries in "
        f"{parallel.wall_seconds:.2f}s ({parallel.throughput_qps:.1f} q/s)"
    )

    failures = 0

    # Determinism across executors: serial and parallel must agree exactly.
    executor_match = serial.estimates() == parallel.estimates()
    if not executor_match:
        failures += 1
        print("[record_perf] FAIL: serial and parallel estimates differ")

    # Service vs direct library calls with the same derived seeds.
    direct_match = True
    for index, result in enumerate(parallel.results):
        direct = execute_scheme(
            result.scheme,
            requests[index].query,
            database,
            epsilon=result.epsilon,
            delta=result.delta,
            seed=derive_seed(master_seed, index),
            engine=result.plan.engine,
        )
        if direct != result.estimate:
            direct_match = False
            print(
                f"[record_perf] FAIL: query {index} ({result.scheme}): "
                f"service={result.estimate} direct={direct}"
            )
    if not direct_match:
        failures += 1
    print(f"[record_perf] service estimates match direct calls: {direct_match}")

    # Resubmission: every query must be served from the result cache.
    resubmit = parallel_service.count_batch(requests, seed=master_seed)
    all_cached = resubmit.cache_hits == len(requests)
    if not all_cached:
        failures += 1
    print(
        f"[record_perf] resubmission cache hits: {resubmit.cache_hits}/"
        f"{len(requests)} in {resubmit.wall_seconds:.3f}s "
        f"({resubmit.throughput_qps:.0f} q/s)"
    )

    scheme_counts: dict = {}
    class_counts: dict = {}
    for result in parallel.results:
        scheme_counts[result.scheme] = scheme_counts.get(result.scheme, 0) + 1
        class_counts[result.query_class] = class_counts.get(result.query_class, 0) + 1

    speedup = (
        parallel.throughput_qps / serial.throughput_qps
        if serial.throughput_qps > 0
        else 0.0
    )
    cached_speedup = (
        resubmit.throughput_qps / serial.throughput_qps
        if serial.throughput_qps > 0
        else 0.0
    )
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "num_queries": len(requests),
        "class_counts": class_counts,
        "scheme_counts": scheme_counts,
        "epsilon": epsilon,
        "delta": delta,
        "master_seed": master_seed,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial.wall_seconds, 4),
        "serial_qps": round(serial.throughput_qps, 2),
        "parallel_executor": parallel.executed_executor,
        "parallel_workers": parallel.max_workers,
        "parallel_seconds": round(parallel.wall_seconds, 4),
        "parallel_qps": round(parallel.throughput_qps, 2),
        "parallel_vs_serial_speedup": round(speedup, 2),
        "cached_resubmission_qps": round(resubmit.throughput_qps, 2),
        "cached_resubmission_speedup": round(cached_speedup, 2),
        "resubmission_cache_hits": resubmit.cache_hits,
        "estimates_match_direct_calls": direct_match,
        "serial_parallel_estimates_match": executor_match,
        "note": (
            "parallel_vs_serial_speedup is bounded by cpu_count; "
            "cached_resubmission_speedup shows the cache-layer gain"
        ),
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} "
        f"(parallel {speedup:.2f}x, cached resubmission {cached_speedup:.0f}x "
        f"vs serial on {os.cpu_count()} cpu(s))"
    )
    # The parallel ratio is cpu-bound (1.0 on single-core runners), so only
    # the cache-layer ratio is a gateable machine-relative metric.
    return (1 if failures else 0), {
        "cached_resubmission_speedup": record["cached_resubmission_speedup"]
    }


# -------------------------------------------------------------- prepared suite
def _alpha_renamed_copies(query, count: int):
    """``count`` alpha-renamed copies of ``query`` (same canonical form,
    disjoint variable names)."""
    copies = []
    for index in range(count):
        mapping = {v: f"r{index}_{v}" for v in query.variables}
        copies.append(query.rename_variables(mapping))
    return copies


def run_prepared(smoke: bool, out_path: Path) -> tuple:
    from repro.core import count_answers_exact as exact_direct  # noqa: F401
    from repro.core import fpras_count_cq, fptras_count_dcq
    from repro.core.registry import REGISTRY
    from repro.queries.builders import path_query, star_query
    from repro.queries.prepared import (
        PreparedQuery,
        clear_prepared_cache,
        prepare,
        prepared_cache_stats,
    )
    from repro.workloads import database_from_graph, erdos_renyi_graph

    copies_per_shape = 12 if smoke else 30
    epsilon, delta = 0.6, 0.3
    database = database_from_graph(erdos_renyi_graph(10, 0.35, rng=23))
    shapes = [
        ("two-hop CQ", "fpras_cq", path_query(2, free_endpoints_only=True)),
        ("star-3 DCQ", "fptras_dcq", star_query(3, with_disequalities=True)),
    ]
    failures = 0
    results = []
    for name, scheme, base in shapes:
        copies = _alpha_renamed_copies(base, copies_per_shape)

        # Per-call: a fresh, uncached PreparedQuery per copy, forced to
        # compile the profile and the nice decomposition (what every scheme
        # call recomputed before the compilation layer existed).
        def compile_per_call():
            for copy in copies:
                fresh = PreparedQuery(copy)
                fresh.width_profile()
                fresh.nice_decomposition()

        per_call_seconds = _best_of(compile_per_call, repeats=1)

        # Prepared-shared: every copy resolves to one cache entry; artifacts
        # are compiled once and translated per renaming.
        clear_prepared_cache()
        hits_before = prepared_cache_stats().hits

        def compile_shared():
            for copy in copies:
                item = prepare(copy)
                item.width_profile()
                item.nice_decomposition_for(copy)

        shared_seconds = _best_of(compile_shared, repeats=1)
        shared = prepare(copies[0])
        stats = shared.artifact_stats()
        cache_hits = prepared_cache_stats().hits - hits_before
        compiled_once = (
            stats["width_profile"]["computes"] == 1
            and stats["fhw_decomposition"]["computes"] == 1
            and cache_hits >= len(copies) - 1
        )
        if not compiled_once:
            failures += 1
            print(f"[record_perf] FAIL: {name}: artifacts compiled more than once")

        # Estimates through the registry must equal the direct library calls
        # with the same seeds (the copies share artifacts; results must not).
        direct_call = fpras_count_cq if scheme == "fpras_cq" else fptras_count_dcq
        estimates_match = True
        for seed, copy in enumerate(copies[:4]):
            via_registry = REGISTRY.count(
                scheme, copy, database, epsilon=epsilon, delta=delta, rng=seed
            ).estimate
            direct = direct_call(
                copy, database, epsilon=epsilon, delta=delta, rng=seed
            )
            if via_registry != direct:
                estimates_match = False
                print(
                    f"[record_perf] FAIL: {name} seed {seed}: "
                    f"registry={via_registry} direct={direct}"
                )
        if not estimates_match:
            failures += 1

        speedup = per_call_seconds / shared_seconds if shared_seconds > 0 else float("inf")
        results.append(
            {
                "shape": name,
                "scheme": scheme,
                "copies": len(copies),
                "per_call_seconds": round(per_call_seconds, 6),
                "prepared_shared_seconds": round(shared_seconds, 6),
                "speedup": round(speedup, 2),
                "cache_hits": cache_hits,
                "artifacts_compiled_once": compiled_once,
                "estimates_match_direct_calls": estimates_match,
            }
        )
        print(
            f"[record_perf] prepared {name}: {len(copies)} copies "
            f"per-call={per_call_seconds * 1000:.1f}ms "
            f"shared={shared_seconds * 1000:.1f}ms speedup={speedup:.1f}x "
            f"cache_hits={cache_hits}"
        )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "epsilon": epsilon,
        "delta": delta,
        "shapes": results,
        "min_speedup": round(min((r["speedup"] for r in results), default=0.0), 2),
        "all_verified": failures == 0,
        "note": (
            "per_call compiles widths + nice decomposition freshly per "
            "alpha-renamed copy (pre-PreparedQuery behaviour); "
            "prepared_shared hits one process-wide cache entry per shape"
        ),
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} "
        f"(min speedup {record['min_speedup']}x)"
    )
    return (1 if failures else 0), {"min_speedup": record["min_speedup"]}


# --------------------------------------------------------------- stream suite
def run_stream_suite(smoke: bool, out_path: Path) -> tuple:
    from repro.core.registry import REGISTRY
    from repro.service import CountingService, ServiceConfig
    from repro.util.rng import derive_seed
    from repro.workloads import database_from_graph, erdos_renyi_graph

    failures = 0
    steps = 60 if smoke else 150
    size = 32 if smoke else 40
    database = database_from_graph(erdos_renyi_graph(size, 0.2, rng=19))
    from repro.relational.signature import RelationSymbol

    database.add_relation(RelationSymbol("F", 2))
    database.add_fact("F", (0, 1))
    service = CountingService(database, ServiceConfig(executor="serial"))
    query = TWO_HOP

    # --- touched-relation loop: delta-patched subscription vs recount.
    # The mutation schedule is the stream workload generator's, restricted
    # to pure insert/delete events over E within the existing universe.
    from repro.stream import stream_schedule

    subscription = service.subscribe(query)
    schedule = stream_schedule(
        steps, database, num_queries=1, rng=5,
        mix={"insert": 0.5, "delete": 0.5},
        relations=("E",), fresh_vertex_probability=0.0,
    )
    incremental_seconds = 0.0
    recount_seconds = 0.0
    mismatches = 0
    modes: dict = {}
    for event in schedule:
        if event.kind == "insert":
            database.add_fact("E", event.fact)
        else:
            database.remove_fact("E", event.fact)
        start = time.perf_counter()
        live = subscription.read()
        incremental_seconds += time.perf_counter() - start
        modes[live.mode] = modes.get(live.mode, 0) + 1
        start = time.perf_counter()
        expected = count_answers_exact(query, database)
        recount_seconds += time.perf_counter() - start
        if live.estimate != expected:
            mismatches += 1
    touched_speedup = (
        recount_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    )
    if mismatches:
        failures += 1
        print(f"[record_perf] FAIL: {mismatches}/{steps} incremental counts diverged")
    print(
        f"[record_perf] stream touched-relation: {steps} steps "
        f"incremental={incremental_seconds * 1000:.1f}ms "
        f"recount={recount_seconds * 1000:.1f}ms "
        f"speedup={touched_speedup:.1f}x modes={modes}"
    )

    # --- untouched-relation loop: mutations elsewhere must be free.
    untouched_reads = steps
    freshness_violations = 0
    start = time.perf_counter()
    for index in range(untouched_reads):
        database.add_fact("F", (index % size, (index * 7 + 1) % size))
        live = subscription.read()
        if not live.fresh or live.refreshed:
            freshness_violations += 1
    untouched_seconds = time.perf_counter() - start
    if freshness_violations:
        failures += 1
        print(
            f"[record_perf] FAIL: {freshness_violations}/{untouched_reads} "
            "untouched-relation reads were stale or refreshed"
        )
    untouched_per_read = untouched_seconds / untouched_reads
    recount_per_step = recount_seconds / steps
    untouched_free = untouched_per_read < 0.05 * recount_per_step
    if not untouched_free:
        failures += 1
        print(
            "[record_perf] FAIL: untouched-relation reads cost "
            f"{untouched_per_read * 1e6:.0f}us each (recount {recount_per_step * 1e3:.1f}ms)"
        )
    print(
        f"[record_perf] stream untouched-relation: {untouched_reads} reads in "
        f"{untouched_seconds * 1000:.2f}ms "
        f"({untouched_per_read * 1e6:.1f}us/read vs {recount_per_step * 1e3:.1f}ms/recount)"
    )
    subscription.close()

    # --- approximate handle: refreshed reads equal direct registry calls.
    from repro.service import CountRequest

    base_seed = 97
    epsilon, delta = 0.6, 0.3
    approx = service.subscribe(
        CountRequest(
            query=query, epsilon=epsilon, delta=delta,
            seed=base_seed, method="fpras_cq",
        )
    )
    approx_match = True
    for refresh_index in (1, 2):
        # A guaranteed-new fact, so the mutation is never a no-op.
        database.add_fact("E", (f"approx{refresh_index}", refresh_index))
        live = approx.read()
        direct = REGISTRY.count(
            "fpras_cq", query, database, epsilon=epsilon, delta=delta,
            rng=derive_seed(base_seed, refresh_index), engine=approx.plan.engine,
        ).estimate
        if live.estimate != direct:
            approx_match = False
            print(
                f"[record_perf] FAIL: approx refresh {refresh_index}: "
                f"live={live.estimate} direct={direct}"
            )
    if not approx_match:
        failures += 1
    print(f"[record_perf] stream approx refresh matches direct registry calls: {approx_match}")
    approx.close()

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "database": f"erdos_renyi({size}, 0.2) symmetric E + sparse F",
        "query": "two-hop CQ",
        "scheme": "exact",
        "mutation_steps": steps,
        "refresh_modes": modes,
        "incremental_seconds": round(incremental_seconds, 6),
        "recount_seconds": round(recount_seconds, 6),
        "touched_speedup": round(touched_speedup, 2),
        "untouched_reads": untouched_reads,
        "untouched_seconds_per_read": round(untouched_per_read, 9),
        "recount_seconds_per_step": round(recount_per_step, 6),
        "untouched_is_near_zero": untouched_free,
        "untouched_reads_all_fresh": freshness_violations == 0,
        "counts_match_recounts": mismatches == 0,
        "approx_refresh_matches_direct": approx_match,
        "note": (
            "touched_speedup compares delta-patched subscription reads with "
            "from-scratch exact recounts of the same database states; "
            "untouched reads are served from the stored fingerprint"
        ),
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} "
        f"(touched {touched_speedup:.1f}x, untouched "
        f"{untouched_per_read * 1e6:.1f}us/read)"
    )
    return (1 if failures else 0), {"touched_speedup": record["touched_speedup"]}


# ---------------------------------------------------------------- shard suite
def _shard_workload(smoke: bool):
    """A large multi-component workload over a relation-partitioned database.

    Four binary relations ``E0..E3`` over one shared universe, and one query
    with four connected components (a two-hop per relation, one free variable
    each): the unsharded exact count enumerates the ~``n^4`` product of the
    per-component answer sets, while the shard planner counts each component
    on its owning shard and multiplies — the decomposition the sharding layer
    exists to exploit.
    """
    from repro.queries.atoms import Atom
    from repro.queries.query import ConjunctiveQuery
    from repro.relational.structure import Database

    size = 9 if smoke else 10
    num_relations = 3
    database = Database(universe=range(size))
    for index in range(num_relations):
        graph = erdos_renyi_graph(size, 0.3, rng=100 + index)
        for u, v in graph.edges():
            database.add_fact(f"E{index}", (u, v))
            database.add_fact(f"E{index}", (v, u))
    atoms = []
    free = []
    for index in range(num_relations):
        a, b, c = f"a{index}", f"b{index}", f"c{index}"
        atoms.append(Atom(f"E{index}", (a, b)))
        atoms.append(Atom(f"E{index}", (b, c)))
        free.append(a)
    query = ConjunctiveQuery(free_variables=free, atoms=atoms)
    return query, database, num_relations


def run_shard_suite(smoke: bool, out_path: Path) -> tuple:
    from repro.shard import (
        ByRelationPartitioner,
        HashTuplePartitioner,
        ShardedStructure,
        ShardExecutor,
        plan_sharded_count,
    )

    failures = 0
    query, database, num_relations = _shard_workload(smoke)
    assignment = {f"E{index}": index for index in range(num_relations)}
    sharded = ShardedStructure.from_structure(
        database, ByRelationPartitioner(num_relations, assignment=assignment)
    )
    plan = plan_sharded_count(query, sharded)
    if plan.strategy != "local":
        failures += 1
        print(f"[record_perf] FAIL: expected a local shard plan, got {plan.strategy!r}")

    unsharded_started = time.perf_counter()
    unsharded_count = count_answers_exact(query, database)
    unsharded_seconds = time.perf_counter() - unsharded_started

    executor = ShardExecutor(mode="process", max_workers=num_relations)
    sharded_started = time.perf_counter()
    sharded_result = executor.count(query, sharded, scheme="exact", plan=plan)
    sharded_seconds = time.perf_counter() - sharded_started
    counts_match = sharded_result.estimate == unsharded_count
    if not counts_match:
        failures += 1
        print(
            f"[record_perf] FAIL: sharded count {sharded_result.estimate} != "
            f"unsharded {unsharded_count}"
        )
    speedup = unsharded_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
    print(
        f"[record_perf] shard local: count={unsharded_count} "
        f"unsharded={unsharded_seconds * 1000:.1f}ms "
        f"sharded={sharded_seconds * 1000:.1f}ms "
        f"({sharded_result.executed_mode}, {sharded_result.num_tasks} tasks "
        f"over shards {list(sharded_result.shards_involved)}) "
        f"speedup={speedup:.1f}x counts_match={counts_match}"
    )

    # Union decomposition (hash-by-tuple): exact counts stay bit-identical.
    union_query = TWO_HOP
    union_database = database_from_graph(erdos_renyi_graph(12, 0.3, rng=31))
    union_sharded = ShardedStructure.from_structure(
        union_database, HashTuplePartitioner(2)
    )
    union_plan = plan_sharded_count(union_query, union_sharded)
    union_expected = count_answers_exact(union_query, union_database)
    union_result = ShardExecutor(mode="serial").count(
        union_query, union_sharded, scheme="exact", plan=union_plan
    )
    union_verified = (
        union_plan.strategy == "union" and union_result.estimate == union_expected
    )
    if not union_verified:
        failures += 1
        print(
            f"[record_perf] FAIL: union path ({union_plan.strategy}) gave "
            f"{union_result.estimate}, expected {union_expected}"
        )
    print(
        f"[record_perf] shard union: {union_result.num_tasks} restrictions, "
        f"count={union_result.estimate} verified={union_verified}"
    )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "num_shards": num_relations,
        "partitioner": "relation",
        "strategy": plan.strategy,
        "cpu_count": os.cpu_count(),
        "executed_mode": sharded_result.executed_mode,
        "query_components": plan.num_components,
        "count": unsharded_count,
        "unsharded_seconds": round(unsharded_seconds, 6),
        "sharded_seconds": round(sharded_seconds, 6),
        "speedup": round(speedup, 2),
        "counts_match": counts_match,
        "union_restrictions": union_result.num_tasks,
        "union_verified": union_verified,
        "note": (
            "speedup compares one multi-component exact count over the "
            "monolith with the shard-decomposed count (per-shard tasks "
            "through the process pool, combined by product); the union row "
            "verifies the hash-by-tuple decomposition stays bit-identical"
        ),
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} (shard-parallel "
        f"{speedup:.1f}x on {os.cpu_count()} cpu(s))"
    )
    return (1 if failures else 0), {"speedup": record["speedup"]}


# ----------------------------------------------------------- resilience suite
def run_resilience_suite(smoke: bool, out_path: Path) -> tuple:
    """Fault-injection overhead and recovery: a mixed batch run fault-free
    and again under a deterministic crash-every-task plan (each task fails
    once and is retried under the same derived seed), verified bit-identical;
    plus the recovery latency of a permanently dead shard falling back to the
    merged view.  The gated metric is ``throughput_retention`` — faulted
    throughput over clean throughput (machine-relative; crash-once-per-task
    costs one extra counting attempt per task, so retention is floored near
    0.5 when counting dominates and stays near 1.0 when planning does — a
    collapse means the retry/injection path itself got expensive)."""
    from repro.queries import parse_query
    from repro.resilience.faults import FaultPlan, FaultRule, uniform_plan
    from repro.resilience.retry import RetryPolicy
    from repro.service import (
        CountingService,
        ServiceConfig,
        mixed_query_workload,
        workload_database,
    )
    from repro.shard import ByRelationPartitioner, ShardedStructure

    failures = 0
    seed = 2022
    retry = RetryPolicy(max_attempts=3)
    num_queries = 20 if smoke else 40
    database = workload_database(
        num_vertices=10 if smoke else 12, edge_probability=0.3, rng=29
    )
    queries = mixed_query_workload(
        num_queries, num_variables=(3, 4) if smoke else (3, 5), rng=41
    )

    def run_batch(fault_plan=None):
        # A fresh service per run: no cache hits, no shared breaker state.
        service = CountingService(database, ServiceConfig(executor="serial"))
        return service.count_batch(
            queries, seed=seed, fault_plan=fault_plan, retry=retry
        )

    clean = min((run_batch() for _ in range(2)), key=lambda r: r.wall_seconds)
    crash_all = uniform_plan(seed, rate=1.0, sites=("executor.task",))
    faulted = min(
        (run_batch(crash_all) for _ in range(2)), key=lambda r: r.wall_seconds
    )

    identical = clean.estimates() == faulted.estimates()
    if not identical:
        failures += 1
        print("[record_perf] FAIL: faulted estimates diverged from fault-free run")
    if faulted.retries < num_queries:
        failures += 1
        print(
            f"[record_perf] FAIL: expected >= {num_queries} retries, "
            f"got {faulted.retries} (plan injected nothing?)"
        )
    retention = (
        clean.wall_seconds / faulted.wall_seconds if faulted.wall_seconds > 0 else 0.0
    )
    print(
        f"[record_perf] resilience batch: {num_queries} queries "
        f"clean={clean.wall_seconds * 1000:.1f}ms "
        f"faulted={faulted.wall_seconds * 1000:.1f}ms "
        f"(crash-once-per-task, {faulted.retries} retries) "
        f"retention={retention:.2f} identical={identical}"
    )

    # Recovery latency: shard 0 permanently down, the task recounts on the
    # merged view — timed, and still bit-identical to the healthy run.
    sharded = ShardedStructure.from_structure(
        database, ByRelationPartitioner(2, assignment={"E": 0, "F": 1})
    )
    shard_queries = [parse_query("Ans(x) :- E(x, y), E(y, z)")]
    healthy = CountingService(sharded, ServiceConfig(executor="serial")).count_batch(
        shard_queries, seed=seed
    )
    dead_shard = FaultPlan(
        seed=seed,
        rules=(FaultRule(site="shard.count", kind="crash", times=99, match=(0,)),),
    )
    recovery_started = time.perf_counter()
    recovered = CountingService(sharded, ServiceConfig(executor="serial")).count_batch(
        shard_queries, seed=seed, fault_plan=dead_shard, retry=retry
    )
    recovery_seconds = time.perf_counter() - recovery_started
    shard_identical = recovered.estimates() == healthy.estimates()
    fell_back = any("merged view" in note for note in recovered.degradations)
    if not (shard_identical and fell_back):
        failures += 1
        print(
            f"[record_perf] FAIL: merged-view fallback identical={shard_identical} "
            f"fell_back={fell_back}"
        )
    print(
        f"[record_perf] resilience shard fallback: dead shard recovered in "
        f"{recovery_seconds * 1000:.1f}ms via merged view "
        f"(identical={shard_identical})"
    )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "num_queries": num_queries,
        "master_seed": seed,
        "fault_plan": "crash-once per executor.task (rate 1.0)",
        "retry_policy": "max_attempts=3, no backoff delay",
        "clean_seconds": round(clean.wall_seconds, 4),
        "faulted_seconds": round(faulted.wall_seconds, 4),
        "faulted_retries": faulted.retries,
        "faulted_degradations": len(faulted.degradations),
        "throughput_retention": round(retention, 2),
        "estimates_bit_identical": identical,
        "merged_fallback_seconds": round(recovery_seconds, 4),
        "merged_fallback_bit_identical": shard_identical,
        "note": (
            "throughput_retention = clean/faulted wall time with every task "
            "crashing once and retrying under the same derived seed (floored "
            "near 0.5 when counting dominates the batch; near 1.0 when "
            "planning does); merged_fallback_seconds is the recovery latency "
            "of a permanently dead shard recounting on the merged view"
        ),
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} "
        f"(retention {retention:.2f}, fallback {recovery_seconds * 1000:.0f}ms)"
    )
    return (1 if failures else 0), {
        "throughput_retention": record["throughput_retention"]
    }


# ------------------------------------------------------------- columnar suite
def run_columnar(smoke: bool, out_path: Path, repeats: int) -> tuple:
    """Columnar-vs-indexed on the two vectorized bulk kernels.

    The headline is the minimum GAC propagation speedup: the fixpoint loop is
    where the columnar engine does whole-column NumPy work (support-count
    arithmetic over int32 code columns) instead of per-tuple Python dict
    probes, so it is the honest place to claim the vectorization win.  Each
    timed run rebuilds the CSP from the shared database caches — identical
    work for both engines — and the propagated domains are compared
    set-for-set.  The join pipeline and exact counts are verified identical
    and timed as secondary, ungated numbers (search-bound counting is only
    modestly faster: the backtracking recursion itself stays in Python).
    """
    from repro.core import count_answers_exact as _exact
    from repro.core.bag_solutions import bag_solutions
    from repro.core.exact import _solution_csp
    from repro.relational import columnar

    if not columnar.columnar_available():
        print("[record_perf] columnar suite skipped: NumPy unavailable")
        return 0, {}

    failures = 0
    three_path = path_query(3)

    # -- propagation fixpoint (gated headline) --
    if smoke:
        gac_sizes = [(100, 0.3), (150, 0.15)]
    else:
        gac_sizes = [(100, 0.3), (200, 0.1), (400, 0.05)]
    gac_results = []
    for size, prob in gac_sizes:
        database = database_from_graph(erdos_renyi_graph(size, prob, rng=size))
        for label, query in (("two-hop", TWO_HOP), ("three-path", three_path)):
            name = f"gac|{label}|U={size} p={prob}"
            fixpoints = {
                engine: _solution_csp(query, database, engine=engine).propagate()
                for engine in ("indexed", "columnar")
            }
            identical = fixpoints["indexed"] == fixpoints["columnar"]
            if not identical:
                failures += 1
                print(f"[record_perf] FAIL: {name} propagated domains diverged")
            indexed_time = _best_of(
                lambda: _solution_csp(query, database, engine="indexed").propagate(),
                repeats,
            )
            columnar_time = _best_of(
                lambda: _solution_csp(query, database, engine="columnar").propagate(),
                repeats,
            )
            speedup = indexed_time / columnar_time if columnar_time > 0 else float("inf")
            gac_results.append(
                {
                    "config": name,
                    "fixpoint_identical": identical,
                    "indexed_seconds": round(indexed_time, 6),
                    "columnar_seconds": round(columnar_time, 6),
                    "speedup": round(speedup, 2),
                }
            )
            print(
                f"[record_perf] {name}: indexed={indexed_time * 1000:.1f}ms "
                f"columnar={columnar_time * 1000:.1f}ms speedup={speedup:.1f}x "
                f"fixpoint_identical={identical}"
            )

    # -- join pipeline (verified + timed, not gated) --
    join_size, join_prob = (60, 0.15) if smoke else (200, 0.1)
    join_db = database_from_graph(erdos_renyi_graph(join_size, join_prob, rng=join_size))
    join_bag = set(three_path.variables)
    join_sets = {
        engine: bag_solutions(three_path, join_db, join_bag, engine=engine)
        for engine in ("indexed", "columnar")
    }
    join_identical = join_sets["indexed"] == join_sets["columnar"]
    if not join_identical:
        failures += 1
        print("[record_perf] FAIL: join-pipeline solution sets diverged")
    join_indexed = _best_of(
        lambda: bag_solutions(three_path, join_db, join_bag, engine="indexed"), repeats
    )
    join_columnar = _best_of(
        lambda: bag_solutions(three_path, join_db, join_bag, engine="columnar"), repeats
    )
    join_speedup = join_indexed / join_columnar if join_columnar > 0 else float("inf")
    print(
        f"[record_perf] join|three-path|U={join_size}: "
        f"|solutions|={len(join_sets['indexed'])} "
        f"indexed={join_indexed:.2f}s columnar={join_columnar:.2f}s "
        f"speedup={join_speedup:.1f}x identical={join_identical}"
    )

    # -- exact counts, all three engines (verified, untimed) --
    count_checks = []
    for size, prob, query, label in (
        (60, 0.3, TWO_HOP, "two-hop"),
        (40, 0.2, three_path, "three-path"),
    ):
        database = database_from_graph(erdos_renyi_graph(size, prob, rng=size))
        counts = {
            engine: _exact(query, database, engine=engine)
            for engine in ("naive", "indexed", "columnar")
        }
        match = len(set(counts.values())) == 1
        if not match:
            failures += 1
            print(f"[record_perf] FAIL: count|{label}|U={size} counts diverged: {counts}")
        count_checks.append(
            {"config": f"count|{label}|U={size}", "count": counts["indexed"], "counts_match": match}
        )
        print(f"[record_perf] count|{label}|U={size}: count={counts['indexed']} match={match}")

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "engine": "columnar",
        "baseline": "indexed",
        "configs": gac_results,
        "join": {
            "config": f"join|three-path|U={join_size} p={join_prob}",
            "solutions": len(join_sets["indexed"]),
            "sets_identical": join_identical,
            "indexed_seconds": round(join_indexed, 4),
            "columnar_seconds": round(join_columnar, 4),
            "speedup": round(join_speedup, 2),
        },
        "count_checks": count_checks,
        "min_speedup": round(min((r["speedup"] for r in gac_results), default=0.0), 2),
        "all_counts_match": failures == 0,
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} "
        f"(min GAC speedup {record['min_speedup']}x)"
    )
    return (1 if failures else 0), {"min_speedup": record["min_speedup"]}


# -------------------------------------------------------------- planner suite
def run_planner(smoke: bool, out_path: Path) -> tuple:
    """Observed-cost adaptive planning: the closed telemetry loop.

    On a database just past the dichotomy's small-instance threshold the
    static Figure-1 pick for a CQ is the FPRAS, while the observed exact
    latencies are orders of magnitude cheaper — the situation the adaptive
    overlay exists for.  The suite warms the profile store with
    ``min_observations`` runs of each candidate under distinct seeds (the
    result cache would swallow repeats of one seed), then drives the same
    request stream through a static service and a warmed adaptive one; the
    gated headline is the adaptive-over-static wall-time speedup.

    Verified along the way (each a planner-determinism contract):

    * a cold-store adaptive plan is byte-identical to the static plan;
    * warmed plans are a pure function of the persisted profile snapshot
      (two services loading the same snapshot plan identically, twice);
    * every estimate — static and adaptive — equals the direct scheme
      execution under the same derived seed (the overlay changes *which*
      scheme runs, never what a scheme computes);
    * every adaptive execution is scored predicted-vs-actual in the
      ``planner.predictions`` counter.
    """
    import tempfile

    from repro.obs.profile import ProfileStore
    from repro.service import (
        CountingService,
        PlannerConfig,
        ServiceConfig,
        execute_scheme,
    )

    failures = 0
    epsilon, delta = (0.5, 0.3) if smoke else (0.4, 0.25)
    runs = 4 if smoke else 6
    min_obs = 3
    database = database_from_graph(
        erdos_renyi_graph(42, 0.25, rng=1), symmetric=True
    )
    query = TWO_HOP

    def config(adaptive: bool) -> ServiceConfig:
        return ServiceConfig(
            executor="serial", epsilon=epsilon, delta=delta,
            planner=PlannerConfig(adaptive=adaptive, min_observations=min_obs),
        )

    adaptive_service = CountingService(database, config(adaptive=True))
    static_service = CountingService(database, config(adaptive=False))

    # Cold-start contract: an empty store falls back to the dichotomy and
    # the plan is byte-identical to the static one.
    static_plan = static_service.plan(query)
    cold_identical = (
        adaptive_service.plan(query).to_dict() == static_plan.to_dict()
    )
    if not cold_identical:
        failures += 1
        print("[record_perf] FAIL: cold adaptive plan != static plan")

    # Warm-up: min_observations runs of each candidate, distinct seeds.
    candidates = ("exact", "fpras_cq")
    warm_started = time.perf_counter()
    for scheme in candidates:
        for index in range(min_obs):
            adaptive_service.submit(
                query, seed=1000 + index, method=scheme
            )
    warm_seconds = time.perf_counter() - warm_started

    # The same request stream, static vs adaptive (distinct seeds again, so
    # every submit actually executes its scheme).
    static_started = time.perf_counter()
    static_results = [
        static_service.submit(query, seed=2000 + index) for index in range(runs)
    ]
    static_seconds = time.perf_counter() - static_started
    adaptive_started = time.perf_counter()
    adaptive_results = [
        adaptive_service.submit(query, seed=2000 + index)
        for index in range(runs)
    ]
    adaptive_seconds = time.perf_counter() - adaptive_started

    static_schemes = sorted({r.scheme for r in static_results})
    adaptive_schemes = sorted({r.scheme for r in adaptive_results})
    switched = static_schemes != adaptive_schemes
    if not switched:
        failures += 1
        print(
            f"[record_perf] FAIL: adaptive ran {adaptive_schemes}, same as "
            f"static {static_schemes} — the overlay never engaged"
        )
    speedup = (
        static_seconds / adaptive_seconds if adaptive_seconds > 0 else float("inf")
    )

    # Estimates equal the direct scheme execution under the same seeds.
    estimates_match = True
    for result in static_results + adaptive_results:
        direct = execute_scheme(
            result.scheme, query, database,
            epsilon=result.epsilon, delta=result.delta,
            seed=result.seed, engine=result.plan.engine,
        )
        if direct != result.estimate:
            estimates_match = False
            print(
                f"[record_perf] FAIL: {result.scheme} seed {result.seed}: "
                f"service={result.estimate} direct={direct}"
            )
    if not estimates_match:
        failures += 1

    # Every adaptive execution was scored predicted-vs-actual.
    outcome_counts = (
        adaptive_service.metrics.snapshot()["counters"]
        .get("planner.predictions", {})
    )
    scored = int(sum(outcome_counts.values()))
    predictions_scored = scored == runs
    if not predictions_scored:
        failures += 1
        print(
            f"[record_perf] FAIL: {scored} predictions scored, "
            f"expected {runs}"
        )

    # Purity: two services loading the persisted snapshot plan identically,
    # and planning twice changes nothing.
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "profiles.json"
        adaptive_service.profiles.save(snapshot_path)
        replayed = []
        for _ in range(2):
            replay = CountingService(
                database,
                ServiceConfig(
                    executor="serial", epsilon=epsilon, delta=delta,
                    planner=PlannerConfig(
                        adaptive=True, min_observations=min_obs
                    ),
                    profile_path=str(snapshot_path),
                ),
            )
            replayed.append(replay.plan(query).to_dict())
            replayed.append(replay.plan(query).to_dict())
        snapshot_runs = ProfileStore.load(snapshot_path).stats()["runs"]
    plans_pure = all(payload == replayed[0] for payload in replayed[1:])
    if not plans_pure:
        failures += 1
        print("[record_perf] FAIL: plans diverged across snapshot replays")

    # Persist the warmed snapshot next to the bench record so CI uploads it
    # with the other BENCH_* artifacts: anyone debugging a gate failure can
    # load the exact profile state the adaptive run planned from.
    profiles_out = out_path.with_name("BENCH_profiles.json")
    adaptive_service.profiles.save(profiles_out)
    print(f"[record_perf] saved warmed profile snapshot to {profiles_out}")

    print(
        f"[record_perf] planner: static {static_schemes} "
        f"{static_seconds * 1000:.0f}ms vs adaptive {adaptive_schemes} "
        f"{adaptive_seconds * 1000:.0f}ms over {runs} requests "
        f"(speedup {speedup:.1f}x, warmed in {warm_seconds:.1f}s, "
        f"{scored} predictions scored)"
    )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "database": "erdos_renyi(42, 0.25) symmetric",
        "database_size": database.size(),
        "query": "two-hop CQ",
        "epsilon": epsilon,
        "delta": delta,
        "min_observations": min_obs,
        "warmup_runs_per_scheme": min_obs,
        "warmup_seconds": round(warm_seconds, 4),
        "timed_requests": runs,
        "static_schemes": static_schemes,
        "adaptive_schemes": adaptive_schemes,
        "static_seconds": round(static_seconds, 4),
        "adaptive_seconds": round(adaptive_seconds, 4),
        "adaptive_speedup": round(speedup, 2),
        "snapshot_runs": snapshot_runs,
        "cold_plan_identical_to_static": cold_identical,
        "estimates_match_direct_calls": estimates_match,
        "predictions_scored": predictions_scored,
        "plans_pure_across_snapshot_replays": plans_pure,
        "note": (
            "adaptive_speedup compares the same request stream on the same "
            "machine through the static Figure-1 planner (FPRAS on a "
            "just-past-threshold database) and the warmed observed-cost "
            "planner (which learns the exact counter is cheaper here); "
            "estimates are verified against direct scheme execution under "
            "the same derived seeds — only the scheme choice changes"
        ),
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} "
        f"(adaptive {speedup:.1f}x over static)"
    )
    return (1 if failures else 0), {"adaptive_speedup": record["adaptive_speedup"]}


# ---------------------------------------------------------------- serve suite
def run_serve_suite(smoke: bool, out_path: Path) -> tuple:
    """The HTTP/JSON front-end under concurrent load.

    Two phases against servers started with ``start_in_thread`` on ephemeral
    ports:

    * **closed-loop latency** — N client threads drain a mixed CQ/DCQ job
      list (distinct seeds, so every request executes rather than hitting
      the result cache), recording per-request wall latency through the
      full wire round trip (serialize, HTTP, admission, dispatch, decode).
      Every served estimate is verified bit-identical to a twin in-process
      :meth:`CountingService.submit` with the same query and seed — the
      wire adds latency, never bits.
    * **herd coalescing** — a barrier releases a herd of byte-identical
      requests into a service whose executor is slowed by a deterministic
      0.25 s latency fault, so the herd reliably overlaps the leader.  The
      ``service.requests`` miss counter must advance by exactly one (one
      underlying execution) and all herd responses must carry the same
      estimate.  The gated ``coalescing_hit_rate`` is
      (herd − executions) / (herd − 1): 1.0 when the herd shares one
      execution, 0.0 if every member were to execute its own.
    """
    import statistics
    import threading

    from repro.queries import parse_query
    from repro.resilience.faults import FaultPlan, FaultRule
    from repro.serve import ServeClient, ServeConfig, start_in_thread
    from repro.service import CountingService, ServiceConfig

    failures = 0
    graph = erdos_renyi_graph(15, 0.25, rng=11)
    database = database_from_graph(graph)
    twin = CountingService(database_from_graph(graph))

    texts = [
        "Ans(x, y) :- E(x, y)",
        "Ans(x) :- E(x, y), E(y, z)",
        "Ans(x, y) :- E(x, y), x != y",
        "Ans(x) :- E(x, y), E(x, z), y != z",
    ]
    num_workers = 4 if smoke else 8
    seeds_per_query = 10 if smoke else 25
    jobs = [
        (text, seed) for seed in range(seeds_per_query) for text in texts
    ]
    latencies = [None] * len(jobs)
    estimates = [None] * len(jobs)
    errors = []

    service = CountingService(database)
    handle = start_in_thread(
        service, ServeConfig(worker_threads=num_workers, max_pending=256)
    )
    try:
        def worker(worker_id: int) -> None:
            client = ServeClient(handle.host, handle.port, timeout=60.0)
            for index in range(worker_id, len(jobs), num_workers):
                text, seed = jobs[index]
                started = time.perf_counter()
                try:
                    result = client.count(text, seed=seed)
                except Exception as error:  # noqa: BLE001 - recorded, then failed
                    errors.append(f"job {index} ({text!r}, seed {seed}): {error}")
                    return
                latencies[index] = time.perf_counter() - started
                estimates[index] = result.estimate

        threads = [
            threading.Thread(target=worker, args=(worker_id,))
            for worker_id in range(num_workers)
        ]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - wall_started
    finally:
        handle.stop()

    if errors:
        failures += 1
        for line in errors[:5]:
            print(f"[record_perf] FAIL: serve closed-loop: {line}")

    # Wire fidelity: every served estimate equals the twin in-process call.
    twin_match = True
    if not errors:
        for index, (text, seed) in enumerate(jobs):
            local = twin.submit(query=parse_query(text), seed=seed)
            if estimates[index] != local.estimate:
                twin_match = False
                print(
                    f"[record_perf] FAIL: serve job {index} ({text!r}, seed "
                    f"{seed}): served={estimates[index]} local={local.estimate}"
                )
        if not twin_match:
            failures += 1

    timed = sorted(value for value in latencies if value is not None)
    p50 = statistics.median(timed) if timed else float("nan")
    p95 = timed[min(len(timed) - 1, int(0.95 * len(timed)))] if timed else float("nan")
    qps = len(timed) / wall_seconds if wall_seconds > 0 else 0.0
    print(
        f"[record_perf] serve closed-loop: {len(timed)}/{len(jobs)} requests, "
        f"{num_workers} workers, {wall_seconds:.2f}s ({qps:.0f} req/s) "
        f"p50={p50 * 1000:.1f}ms p95={p95 * 1000:.1f}ms twin_match={twin_match}"
    )

    # --- herd phase: identical requests share exactly one execution.
    herd = 16 if smoke else 32
    slow_plan = FaultPlan(
        seed=1,
        rules=(
            FaultRule(
                site="executor.task", kind="latency",
                rate=1.0, latency_seconds=0.25,
            ),
        ),
    )
    herd_service = CountingService(
        database_from_graph(graph), ServiceConfig(fault_plan=slow_plan)
    )
    herd_handle = start_in_thread(
        herd_service, ServeConfig(worker_threads=herd, max_pending=2 * herd)
    )
    herd_results = []
    herd_errors = []
    try:
        miss = herd_service.metrics.counter("service.requests", cache="miss")
        misses_before = miss.value
        barrier = threading.Barrier(herd)

        def herd_member() -> None:
            client = ServeClient(herd_handle.host, herd_handle.port, timeout=60.0)
            barrier.wait()
            try:
                result = client.count(
                    "Ans(x) :- E(x, y), E(y, z)", seed=21
                )
            except Exception as error:  # noqa: BLE001
                herd_errors.append(str(error))
                return
            herd_results.append((result.estimate, result.coalesced))

        members = [threading.Thread(target=herd_member) for _ in range(herd)]
        herd_started = time.perf_counter()
        for member in members:
            member.start()
        for member in members:
            member.join()
        herd_seconds = time.perf_counter() - herd_started
        executions = int(miss.value - misses_before)
    finally:
        herd_handle.stop()

    if herd_errors:
        failures += 1
        print(f"[record_perf] FAIL: serve herd: {herd_errors[:3]}")
    herd_estimates = {estimate for estimate, _ in herd_results}
    coalesced_responses = sum(1 for _, flag in herd_results if flag)
    herd_identical = len(herd_estimates) == 1 and len(herd_results) == herd
    if not herd_identical:
        failures += 1
        print(
            f"[record_perf] FAIL: serve herd: {len(herd_results)}/{herd} "
            f"responses, {len(herd_estimates)} distinct estimate(s)"
        )
    if executions != 1:
        failures += 1
        print(
            f"[record_perf] FAIL: serve herd executed the count "
            f"{executions} time(s), expected exactly 1"
        )
    coalescing_hit_rate = (
        (herd - executions) / (herd - 1) if herd > 1 else 0.0
    )
    print(
        f"[record_perf] serve herd: {herd} identical requests in "
        f"{herd_seconds:.2f}s, {executions} execution(s), "
        f"{coalesced_responses} coalesced response(s), "
        f"hit_rate={coalescing_hit_rate:.2f} identical={herd_identical}"
    )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "database": "erdos_renyi(15, 0.25) symmetric E",
        "num_requests": len(jobs),
        "client_threads": num_workers,
        "wall_seconds": round(wall_seconds, 4),
        "requests_per_second": round(qps, 2),
        "latency_p50_ms": round(p50 * 1000, 3),
        "latency_p95_ms": round(p95 * 1000, 3),
        "estimates_match_twin_service": twin_match and not errors,
        "herd_size": herd,
        "herd_seconds": round(herd_seconds, 4),
        "herd_executions": executions,
        "herd_coalesced_responses": coalesced_responses,
        "herd_estimates_identical": herd_identical,
        "coalescing_hit_rate": round(coalescing_hit_rate, 4),
        "note": (
            "closed-loop latency is the full wire round trip (serialize, "
            "HTTP, admission, dispatch, decode) for distinct-seed requests "
            "that each execute; coalescing_hit_rate comes from a "
            "barrier-released herd of identical requests against a "
            "latency-injected executor — (herd - executions) / (herd - 1), "
            "where executions is the service.requests miss-counter delta"
        ),
    }
    _append_record(out_path, record)
    print(
        f"[record_perf] appended record to {out_path} "
        f"(hit rate {coalescing_hit_rate:.2f}, p95 {p95 * 1000:.1f}ms)"
    )
    return (1 if failures else 0), {
        "coalescing_hit_rate": record["coalescing_hit_rate"]
    }


# ------------------------------------------------------------------ perf gate
def check_against(
    baseline_path: Path, observed: dict, tolerance_override: float = None
) -> int:
    """Compare observed suite metrics with committed baselines.

    The baselines file maps suite name -> {metric: baseline value} (plus an
    optional top-level ``tolerance``).  A metric regresses when ``observed <
    baseline / tolerance``; only suites that actually ran are checked, and a
    gated metric missing from a run that should carry it fails loudly.
    """
    payload = json.loads(Path(baseline_path).read_text())
    tolerance = float(payload.get("tolerance", 1.5))
    if tolerance_override is not None:
        tolerance = float(tolerance_override)
    if tolerance < 1.0:
        raise SystemExit("--check-tolerance must be >= 1.0")
    suites = payload.get("suites", {})
    failures = 0
    checked = 0
    for suite, metrics in sorted(suites.items()):
        if suite not in observed:
            continue
        for metric, baseline in sorted(metrics.items()):
            current = observed[suite].get(metric)
            checked += 1
            floor = baseline / tolerance
            if current is None:
                failures += 1
                print(
                    f"[perf-gate] FAIL {suite}.{metric}: metric missing from "
                    f"this run (baseline {baseline})"
                )
            elif current < floor:
                failures += 1
                print(
                    f"[perf-gate] FAIL {suite}.{metric}: {current} < "
                    f"{floor:.2f} (baseline {baseline} / tolerance {tolerance})"
                )
            else:
                print(
                    f"[perf-gate] ok   {suite}.{metric}: {current} >= "
                    f"{floor:.2f} (baseline {baseline} / tolerance {tolerance})"
                )
    if checked == 0:
        print("[perf-gate] no baselined suite ran; nothing to check")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="budgeted subset")
    parser.add_argument(
        "--suite",
        choices=[
            "engine", "service", "prepared", "stream", "shard", "resilience",
            "columnar", "planner", "serve", "all",
        ],
        default="all",
        help="which suite(s) to run (default: all)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_engine.json",
        help="engine-suite output JSON file",
    )
    parser.add_argument(
        "--service-out", type=Path, default=REPO_ROOT / "BENCH_service.json",
        help="service-suite output JSON file",
    )
    parser.add_argument(
        "--prepared-out", type=Path, default=REPO_ROOT / "BENCH_prepared.json",
        help="prepared-suite output JSON file",
    )
    parser.add_argument(
        "--stream-out", type=Path, default=REPO_ROOT / "BENCH_stream.json",
        help="stream-suite output JSON file",
    )
    parser.add_argument(
        "--shard-out", type=Path, default=REPO_ROOT / "BENCH_shard.json",
        help="shard-suite output JSON file",
    )
    parser.add_argument(
        "--resilience-out", type=Path, default=REPO_ROOT / "BENCH_resilience.json",
        help="resilience-suite output JSON file",
    )
    parser.add_argument(
        "--columnar-out", type=Path, default=REPO_ROOT / "BENCH_columnar.json",
        help="columnar-suite output JSON file",
    )
    parser.add_argument(
        "--planner-out", type=Path, default=REPO_ROOT / "BENCH_planner.json",
        help="planner-suite output JSON file",
    )
    parser.add_argument(
        "--serve-out", type=Path, default=REPO_ROOT / "BENCH_serve.json",
        help="serve-suite output JSON file",
    )
    parser.add_argument(
        "--trajectory-out", type=Path, default=REPO_ROOT / "BENCH_trajectory.jsonl",
        help="cumulative one-line-per-suite trajectory log (JSON lines)",
    )
    parser.add_argument(
        "--timestamp", default=None, metavar="ISO8601",
        help="timestamp recorded in trajectory lines (default: now, UTC); "
        "CI passes the workflow-run timestamp so retries dedupe",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--budget-seconds", type=float, default=30.0, help="smoke-mode time budget"
    )
    parser.add_argument(
        "--check-against", type=Path, default=None, metavar="BASELINES_JSON",
        help="fail if any suite's headline metric regresses beyond the "
        "tolerance relative to the committed baselines (the CI perf gate)",
    )
    parser.add_argument(
        "--check-tolerance", type=float, default=None,
        help="override the baselines file's regression tolerance (default 1.5)",
    )
    args = parser.parse_args()
    status = 0
    observed = {}
    if args.suite in ("engine", "all"):
        suite_status, metrics = run_engine(
            args.smoke, args.out, max(1, args.repeats), args.budget_seconds
        )
        status |= suite_status
        observed["engine"] = metrics
    if args.suite in ("service", "all"):
        suite_status, metrics = run_service(args.smoke, args.service_out)
        status |= suite_status
        observed["service"] = metrics
    if args.suite in ("prepared", "all"):
        suite_status, metrics = run_prepared(args.smoke, args.prepared_out)
        status |= suite_status
        observed["prepared"] = metrics
    if args.suite in ("stream", "all"):
        suite_status, metrics = run_stream_suite(args.smoke, args.stream_out)
        status |= suite_status
        observed["stream"] = metrics
    if args.suite in ("shard", "all"):
        suite_status, metrics = run_shard_suite(args.smoke, args.shard_out)
        status |= suite_status
        observed["shard"] = metrics
    if args.suite in ("resilience", "all"):
        suite_status, metrics = run_resilience_suite(args.smoke, args.resilience_out)
        status |= suite_status
        observed["resilience"] = metrics
    if args.suite in ("columnar", "all"):
        suite_status, metrics = run_columnar(
            args.smoke, args.columnar_out, max(1, args.repeats)
        )
        status |= suite_status
        if metrics:
            observed["columnar"] = metrics
    if args.suite in ("planner", "all"):
        suite_status, metrics = run_planner(args.smoke, args.planner_out)
        status |= suite_status
        observed["planner"] = metrics
    if args.suite in ("serve", "all"):
        suite_status, metrics = run_serve_suite(args.smoke, args.serve_out)
        status |= suite_status
        observed["serve"] = metrics
    timestamp = args.timestamp or datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    _append_trajectory(
        args.trajectory_out, observed, timestamp, "smoke" if args.smoke else "full"
    )
    if args.check_against is not None:
        status |= check_against(args.check_against, observed, args.check_tolerance)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
