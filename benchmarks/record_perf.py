#!/usr/bin/env python
"""Standalone engine-speedup recorder: writes ``BENCH_engine.json``.

Runs the indexed CSP/join engine and the retained naive scan path on the
medium configurations of ``bench_scaling_database`` (the fixed two-hop query
over growing Erdős–Rényi databases) and ``bench_star_queries`` (the
footnote-4 star family), verifies that both engines — and, on the smallest
configuration, the independent brute-force counter — produce identical
counts, and appends a timestamped speedup record to ``BENCH_engine.json`` at
the repository root.

Usage::

    python benchmarks/record_perf.py            # full configurations
    python benchmarks/record_perf.py --smoke    # ~30-second budgeted subset
    python benchmarks/record_perf.py --out PATH # custom output file

Exits non-zero if any count mismatches.  Installed environments get the
pytest-benchmark harness via the ``bench`` extra (``pip install .[bench]``);
this script intentionally has no dependency beyond the package itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.applications import star_instance  # noqa: E402
from repro.core import count_answers_exact  # noqa: E402
from repro.queries.builders import path_query  # noqa: E402
from repro.workloads import database_from_graph, erdos_renyi_graph  # noqa: E402

TWO_HOP = path_query(2, free_endpoints_only=True)
STAR_GRAPH = erdos_renyi_graph(12, 0.3, rng=17)


def _scaling_config(size: int):
    database = database_from_graph(erdos_renyi_graph(size, 0.3, rng=size))
    return f"bench_scaling_database|two-hop|U={size}", TWO_HOP, database


def _star_config(k: int):
    query, database = star_instance(STAR_GRAPH, k)
    return f"bench_star_queries|star k={k}|U={STAR_GRAPH.number_of_nodes()}", query, database


def _configs(smoke: bool):
    if smoke:
        return [_scaling_config(14), _star_config(3)]
    return [_scaling_config(14), _scaling_config(20), _star_config(3), _star_config(4)]


def _best_of(call, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def run(smoke: bool, out_path: Path, repeats: int, budget_seconds: float) -> int:
    started = time.perf_counter()
    results = []
    failures = 0
    for name, query, database in _configs(smoke):
        if smoke and time.perf_counter() - started > budget_seconds:
            print(f"[record_perf] smoke budget of {budget_seconds:.0f}s reached; stopping")
            break
        naive_count = count_answers_exact(query, database, engine="naive")
        indexed_count = count_answers_exact(query, database, engine="indexed")
        bruteforce_count = None
        if len(query.variables) <= 3 and len(database.universe) <= 14:
            bruteforce_count = count_answers_exact(query, database, method="bruteforce")
        counts_match = naive_count == indexed_count and (
            bruteforce_count is None or bruteforce_count == indexed_count
        )
        if not counts_match:
            failures += 1
        naive_time = _best_of(
            lambda: count_answers_exact(query, database, engine="naive"), repeats
        )
        indexed_time = _best_of(
            lambda: count_answers_exact(query, database, engine="indexed"), repeats
        )
        speedup = naive_time / indexed_time if indexed_time > 0 else float("inf")
        results.append(
            {
                "config": name,
                "count": naive_count,
                "bruteforce_count": bruteforce_count,
                "counts_match": counts_match,
                "naive_seconds": round(naive_time, 6),
                "indexed_seconds": round(indexed_time, 6),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"[record_perf] {name}: count={naive_count} "
            f"naive={naive_time * 1000:.1f}ms indexed={indexed_time * 1000:.1f}ms "
            f"speedup={speedup:.1f}x counts_match={counts_match}"
        )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "engine": "indexed",
        "baseline": "naive",
        "configs": results,
        "min_speedup": round(min((r["speedup"] for r in results), default=0.0), 2),
        "all_counts_match": failures == 0,
    }

    existing = []
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
            if not isinstance(existing, list):
                existing = [existing]
        except json.JSONDecodeError:
            existing = []
    existing.append(record)
    out_path.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"[record_perf] appended record to {out_path} (min speedup {record['min_speedup']}x)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="~30s budgeted subset")
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_engine.json", help="output JSON file"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--budget-seconds", type=float, default=30.0, help="smoke-mode time budget"
    )
    args = parser.parse_args()
    return run(args.smoke, args.out, max(1, args.repeats), args.budget_seconds)


if __name__ == "__main__":
    raise SystemExit(main())
