"""Experiment: the footnote-4 star/common-neighbour query family.

Claims reproduced:

* the quantified-centre query ``∃y ⋀_i E(y, x_i)`` is trivially decidable but
  its exact counting cost grows with k (SETH-hardness in the paper; here we
  show the measured growth),
* approximate counting stays feasible: Theorem 16's FPRAS handles the CQ
  variant and Theorem 5's FPTRAS the pairwise-distinct DCQ variant,
* making the centre free makes exact counting easy (closed form
  ``Σ_y deg(y)^k``).
"""

from __future__ import annotations

import time

import pytest

from repro.applications import (
    count_star_answers_centre_free_closed_form,
    star_instance,
)
from repro.core import count_answers_exact, fpras_count_cq, fptras_count_dcq
from repro.util.estimation import relative_error
from repro.workloads import erdos_renyi_graph

GRAPH = erdos_renyi_graph(12, 0.3, rng=17)


@pytest.mark.parametrize("k", [2, 3, 4])
def test_star_exact_counting_growth(benchmark, k):
    query, database = star_instance(GRAPH, k)
    result = benchmark(lambda: count_answers_exact(query, database))
    assert result >= 0


@pytest.mark.parametrize("k", [2, 3])
def test_star_fpras(benchmark, k):
    query, database = star_instance(GRAPH, k)
    result = benchmark(lambda: fpras_count_cq(query, database, 0.3, 0.1, rng=k))
    assert result >= 0


def test_star_family_summary(table_printer, benchmark):
    rows = []

    def run():
        rows.clear()
        _collect_star_rows(rows)

    benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer(
        "Footnote-4 star queries: CQ (FPRAS), DCQ (FPTRAS), centre-free closed form",
        ["k", "exact CQ", "FPRAS (err)", "t", "exact DCQ", "FPTRAS", "t", "Σ deg^k"],
        rows,
    )
    assert True


def _collect_star_rows(rows):
    for k in (2, 3):
        query, database = star_instance(GRAPH, k)
        distinct_query, _ = star_instance(GRAPH, k, with_disequalities=True)
        truth = count_answers_exact(query, database)
        truth_distinct = count_answers_exact(distinct_query, database)
        start = time.perf_counter()
        fpras = fpras_count_cq(query, database, 0.3, 0.1, rng=k + 5)
        fpras_time = time.perf_counter() - start
        start = time.perf_counter()
        fptras = fptras_count_dcq(distinct_query, database, 0.4, 0.2, rng=k + 6)
        fptras_time = time.perf_counter() - start
        centre_free = count_star_answers_centre_free_closed_form(GRAPH, k)
        rows.append(
            [
                k,
                truth,
                f"{fpras:.1f} ({relative_error(fpras, truth):.2f})" if truth else f"{fpras:.1f}",
                f"{fpras_time * 1000:.0f}ms",
                truth_distinct,
                f"{fptras:.1f}" if truth_distinct else f"{fptras:.1f}",
                f"{fptras_time * 1000:.0f}ms",
                centre_free,
            ]
        )
