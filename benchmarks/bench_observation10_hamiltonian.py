"""Experiment: Figure 1, "no FPRAS" cell / Observation 10.

Claim reproduced: the Hamiltonian-path DCQ has treewidth 1 and arity 2, yet
counting (even detecting) its answers is NP-hard — so no FPRAS can exist for
#DCQ unless NP = RP, and the paper's positive results must settle for
FPTRASes.  The bench (a) validates the encoding (answers = directed
Hamiltonian paths, via the Held–Karp DP), and (b) shows the exponential growth
of the exact count time in the number of query variables n — which here equals
the database size, so the ``f(||phi||)`` factor of an FPTRAS is of no help.
"""

from __future__ import annotations

import time

import pytest

from repro.applications import count_hamiltonian_paths_dp, hamiltonian_instance
from repro.core import count_answers_exact
from repro.decomposition import exact_treewidth
from repro.workloads import erdos_renyi_graph


@pytest.mark.parametrize("n", [5, 6, 7])
def test_hamiltonian_exact_query_counting(benchmark, n):
    graph = erdos_renyi_graph(n, 0.6, rng=n)
    query, database = hamiltonian_instance(graph)
    result = benchmark(lambda: count_answers_exact(query, database))
    assert result == count_hamiltonian_paths_dp(graph)


@pytest.mark.parametrize("n", [6, 8, 10])
def test_hamiltonian_dp_baseline(benchmark, n):
    graph = erdos_renyi_graph(n, 0.6, rng=n)
    result = benchmark(lambda: count_hamiltonian_paths_dp(graph))
    assert result >= 0


def test_observation10_summary(table_printer, benchmark):
    def run():
        rows = []
        for n in (4, 5, 6, 7):
            graph = erdos_renyi_graph(n, 0.6, rng=n)
            query, database = hamiltonian_instance(graph)
            start = time.perf_counter()
            count = count_answers_exact(query, database)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    n,
                    exact_treewidth(query.hypergraph()),
                    len(query.disequalities),
                    count,
                    f"{elapsed * 1000:.1f}ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer(
        "Observation 10 — Hamiltonian-path DCQ (treewidth 1, no FPRAS unless NP=RP)",
        ["n", "treewidth", "#disequalities", "Hamiltonian paths", "exact time"],
        rows,
    )
    assert True
