"""Experiment: the (epsilon, delta) contract of all three approximation
schemes, measured as the empirical relative error against exact counts over a
small battery of seeded instances.

This is the reproduction's stand-in for a "results table": for every scheme
(Theorem 5, Theorem 13, Theorem 16) the median and maximum relative error
across the battery should be comfortably within the requested epsilon band.
"""

from __future__ import annotations

import statistics

import pytest

from repro.core import (
    count_answers_exact,
    fpras_count_cq,
    fptras_count_dcq,
    fptras_count_ecq,
)
from repro.queries import parse_query
from repro.queries.builders import friends_query, path_query, star_query
from repro.util.estimation import relative_error
from repro.workloads import database_from_graph, erdos_renyi_graph

EPSILON = 0.35
DELTA = 0.2
SEEDS = [0, 1, 2]


def _instances():
    for seed in SEEDS:
        graph = erdos_renyi_graph(11, 0.3, rng=seed)
        yield seed, database_from_graph(graph), database_from_graph(graph, relation="F")


def _errors(scheme):
    errors = []
    for seed, db_e, db_f in _instances():
        if scheme == "fpras":
            query = path_query(2, free_endpoints_only=True)
            truth = count_answers_exact(query, db_e)
            estimate = fpras_count_cq(query, db_e, EPSILON, DELTA, rng=seed + 10)
        elif scheme == "fptras_dcq":
            query = star_query(2, with_disequalities=True)
            truth = count_answers_exact(query, db_e)
            estimate = fptras_count_dcq(query, db_e, EPSILON, DELTA, rng=seed + 20)
        else:
            query = friends_query()
            truth = count_answers_exact(query, db_f)
            estimate = fptras_count_ecq(query, db_f, EPSILON, DELTA, rng=seed + 30)
        if truth > 0:
            errors.append(relative_error(estimate, truth))
        else:
            errors.append(0.0 if estimate <= 0.5 else 1.0)
    return errors


@pytest.mark.parametrize("scheme", ["fpras", "fptras_dcq", "fptras_ecq"])
def test_accuracy_battery(scheme, table_printer, benchmark):
    errors = benchmark.pedantic(lambda: _errors(scheme), rounds=1, iterations=1)
    table_printer(
        f"Accuracy battery — {scheme} (epsilon = {EPSILON})",
        ["seed", "relative error"],
        [[seed, f"{error:.3f}"] for seed, error in zip(SEEDS, errors)],
    )
    assert statistics.median(errors) <= EPSILON + 0.15
    assert max(errors) <= 0.75
