"""Experiment: Corollary 6 — counting locally injective homomorphisms.

Claim reproduced: #LIHom(C_t, all graphs) has an FPTRAS when the pattern class
C_t has bounded treewidth, via the ECQ encoding
``phi(G) = ⋀_{edges} E(x_i, x_j) ∧ ⋀_{cn(G)} x_i != x_j``.  The bench encodes
path and star patterns (treewidth 1), counts locally injective homomorphisms
into random host graphs exactly and with the Theorem-5 FPTRAS, and reports the
relative errors, plus timings for both.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.applications import (
    count_locally_injective_homomorphisms_approx,
    count_locally_injective_homomorphisms_exact,
)
from repro.util.estimation import relative_error
from repro.workloads import erdos_renyi_graph

PATTERNS = {
    "path-3": nx.path_graph(3),
    "path-4": nx.path_graph(4),
    "star-3": nx.star_graph(3),
}


@pytest.mark.parametrize("name", list(PATTERNS))
def test_corollary6_accuracy(name, table_printer, benchmark):
    pattern = PATTERNS[name]
    host = erdos_renyi_graph(9, 0.35, rng=len(name))
    truth = count_locally_injective_homomorphisms_exact(pattern, host)
    estimate = benchmark.pedantic(
        lambda: count_locally_injective_homomorphisms_approx(
            pattern, host, epsilon=0.4, delta=0.2, rng=1
        ),
        rounds=1,
        iterations=1,
    )
    error = relative_error(estimate, truth) if truth else 0.0
    table_printer(
        f"Corollary 6 — locally injective homomorphisms, pattern {name}",
        ["pattern", "|V(host)|", "exact #LIHom", "FPTRAS", "rel. error"],
        [[name, 9, truth, f"{estimate:.1f}", f"{error:.3f}"]],
    )
    assert error <= 0.6 or abs(estimate - truth) <= 2


@pytest.mark.parametrize("name", ["path-3", "star-3"])
def test_corollary6_fptras_runtime(benchmark, name):
    pattern = PATTERNS[name]
    host = erdos_renyi_graph(9, 0.35, rng=3)
    result = benchmark(
        lambda: count_locally_injective_homomorphisms_approx(
            pattern, host, epsilon=0.4, delta=0.2, rng=4
        )
    )
    assert result >= 0


@pytest.mark.parametrize("name", ["path-3", "star-3"])
def test_corollary6_exact_runtime(benchmark, name):
    pattern = PATTERNS[name]
    host = erdos_renyi_graph(9, 0.35, rng=3)
    result = benchmark(
        lambda: count_locally_injective_homomorphisms_exact(pattern, host)
    )
    assert result >= 0
