"""Experiment: dependence of the approximation schemes on the accuracy
parameter epsilon.

Claim reproduced: the running-time bounds of Theorems 5/13/16 are polynomial
in ``1/epsilon`` (and only logarithmic in ``1/delta``).  The bench fixes a
query/database pair and sweeps epsilon; the cost should grow moderately as
epsilon shrinks, and the measured relative error should shrink along with it.
"""

from __future__ import annotations

import time

import pytest

from repro.core import count_answers_exact, fpras_count_cq, fptras_count_dcq
from repro.queries.builders import path_query, star_query
from repro.util.estimation import relative_error
from repro.workloads import database_from_graph, erdos_renyi_graph

DATABASE = database_from_graph(erdos_renyi_graph(14, 0.3, rng=21))
CQ_QUERY = path_query(2, free_endpoints_only=True)
DCQ_QUERY = star_query(2, with_disequalities=True)
EPSILONS = [0.5, 0.3, 0.15]


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fpras_epsilon_scaling(benchmark, epsilon):
    result = benchmark(lambda: fpras_count_cq(CQ_QUERY, DATABASE, epsilon, 0.1, rng=1))
    assert result >= 0


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fptras_epsilon_scaling(benchmark, epsilon):
    result = benchmark(lambda: fptras_count_dcq(DCQ_QUERY, DATABASE, epsilon, 0.2, rng=2))
    assert result >= 0


def test_epsilon_error_summary(table_printer, benchmark):
    exact_cq = count_answers_exact(CQ_QUERY, DATABASE)
    exact_dcq = count_answers_exact(DCQ_QUERY, DATABASE)

    def run():
        rows = []
        for epsilon in EPSILONS:
            start = time.perf_counter()
            fpras = fpras_count_cq(CQ_QUERY, DATABASE, epsilon, 0.1, rng=3)
            fpras_time = time.perf_counter() - start
            start = time.perf_counter()
            fptras = fptras_count_dcq(DCQ_QUERY, DATABASE, epsilon, 0.2, rng=4)
            fptras_time = time.perf_counter() - start
            rows.append(
                [
                    epsilon,
                    f"{relative_error(fpras, exact_cq):.3f}",
                    f"{fpras_time * 1000:.0f}ms",
                    f"{relative_error(fptras, exact_dcq):.3f}",
                    f"{fptras_time * 1000:.0f}ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer(
        "Accuracy / cost vs epsilon",
        ["epsilon", "FPRAS rel. error", "FPRAS time", "FPTRAS rel. error", "FPTRAS time"],
        rows,
    )
    assert True
