"""Experiment: Figure 1, unbounded-arity DCQ cell / Theorem 13.

Claim reproduced: for DCQs with bounded adaptive width — in particular
high-arity acyclic queries, which have adaptive width 1 but treewidth
``arity - 1`` — the FPTRAS of Theorem 13 approximates the answer count.  The
bench uses chains of arity-3/4 relations with shared variables, disequalities
on the free variables, and random correlated databases.
"""

from __future__ import annotations

import pytest

from repro.core import count_answers_exact, fptras_count_dcq
from repro.decomposition import fractional_hypertreewidth
from repro.queries.builders import high_arity_acyclic_query
from repro.util.estimation import relative_error
from repro.workloads import random_high_arity_database

EPSILON = 0.4
DELTA = 0.2

CASES = [
    ("arity-3 chain, 2 blocks", 2, 3, 8, 40),
    ("arity-4 chain, 2 blocks", 2, 4, 6, 35),
    ("arity-3 chain, 3 blocks", 3, 3, 6, 30),
]


@pytest.mark.parametrize(
    "name, blocks, arity, universe, facts", CASES, ids=[c[0] for c in CASES]
)
def test_theorem13_accuracy(name, blocks, arity, universe, facts, table_printer, benchmark):
    query = high_arity_acyclic_query(
        num_blocks=blocks, block_arity=arity, shared=1, num_free=2, with_disequalities=True
    )
    database = random_high_arity_database(
        universe_size=universe,
        relation_names=[f"R{i}" for i in range(blocks)],
        arity=arity,
        facts_per_relation=facts,
        rng=blocks * 10 + arity,
    )
    fhw, _ = fractional_hypertreewidth(query.hypergraph())
    truth = count_answers_exact(query, database)
    estimate = benchmark.pedantic(
        lambda: fptras_count_dcq(query, database, EPSILON, DELTA, rng=3),
        rounds=1,
        iterations=1,
    )
    error = relative_error(estimate, truth) if truth else 0.0
    table_printer(
        f"Theorem 13 accuracy — {name}",
        ["arity", "fhw (≥ aw)", "|U(D)|", "exact", "FPTRAS", "rel. error"],
        [[arity, f"{fhw:.1f}", universe, truth, f"{estimate:.1f}", f"{error:.3f}"]],
    )
    assert error <= 0.6 or abs(estimate - truth) <= 2


@pytest.mark.parametrize("arity", [3, 4])
def test_theorem13_runtime(benchmark, arity):
    query = high_arity_acyclic_query(
        num_blocks=2, block_arity=arity, shared=1, num_free=2, with_disequalities=True
    )
    database = random_high_arity_database(
        universe_size=6, relation_names=["R0", "R1"], arity=arity,
        facts_per_relation=25, rng=arity,
    )
    result = benchmark(
        lambda: fptras_count_dcq(query, database, EPSILON, DELTA, rng=arity)
    )
    assert result >= 0
