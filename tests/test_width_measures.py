"""Tests for fractional edge covers, fractional hypertreewidth,
(generalized) hypertreewidth, adaptive width and the Lemma-12 relations."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    adaptive_width_lower_bound,
    adaptive_width_upper_bound,
    edge_cover_number,
    estimate_adaptive_width,
    exact_treewidth,
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_hypertreewidth,
    fractional_hypertreewidth_decomposition,
    generalized_hypertreewidth,
    hypertree_decomposition,
    mu_width,
    uniform_fractional_independent_set,
    width_profile,
)
from repro.decomposition.adaptive import (
    is_fractional_independent_set,
    observation_34_holds,
    random_fractional_independent_set,
)
from repro.hypergraph import (
    Hypergraph,
    complete_graph_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    path_hypergraph,
    random_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.generators import single_edge_hypergraph


class TestFractionalEdgeCover:
    def test_single_edge(self):
        hypergraph = single_edge_hypergraph(4)
        weights, value = fractional_edge_cover(hypergraph)
        assert value == pytest.approx(1.0)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_triangle_fractional_cover_is_three_halves(self):
        """The triangle needs weight 1/2 on every edge: fcn(K3) = 3/2."""
        hypergraph = cycle_hypergraph(3)
        assert fractional_edge_cover_number(hypergraph) == pytest.approx(1.5)

    def test_path_cover(self):
        hypergraph = path_hypergraph(4)  # 3 edges, 4 vertices
        value = fractional_edge_cover_number(hypergraph)
        assert value == pytest.approx(2.0)

    def test_cover_is_feasible(self):
        hypergraph = grid_hypergraph(2, 3)
        weights, _ = fractional_edge_cover(hypergraph)
        for vertex in hypergraph.vertices:
            covered = sum(w for edge, w in weights.items() if vertex in edge)
            assert covered >= 1.0 - 1e-6

    def test_isolated_vertex_rejected(self):
        hypergraph = Hypergraph(vertices=[1, 2, 3], edges=[(1, 2)])
        with pytest.raises(ValueError):
            fractional_edge_cover(hypergraph)

    def test_empty_hypergraph(self):
        assert fractional_edge_cover(Hypergraph()) == ({}, 0.0)


class TestFractionalHypertreewidth:
    def test_acyclic_single_edge_has_fhw_one(self):
        hypergraph = single_edge_hypergraph(5)
        value, exact = fractional_hypertreewidth(hypergraph)
        assert exact
        assert value == pytest.approx(1.0)

    def test_path_has_fhw_one(self):
        value, _ = fractional_hypertreewidth(path_hypergraph(5))
        assert value == pytest.approx(1.0)

    def test_triangle_fhw(self):
        value, _ = fractional_hypertreewidth(cycle_hypergraph(3))
        assert value == pytest.approx(1.5)

    def test_fhw_at_most_hypertreewidth(self):
        for hypergraph in [cycle_hypergraph(5), grid_hypergraph(2, 3), star_hypergraph(4)]:
            fhw, _ = fractional_hypertreewidth(hypergraph)
            ghw, _ = generalized_hypertreewidth(hypergraph)
            assert fhw <= ghw + 1e-9

    def test_fhw_decomposition_is_valid(self):
        hypergraph = grid_hypergraph(2, 3)
        decomposition, value, exact = fractional_hypertreewidth_decomposition(hypergraph)
        assert exact
        assert decomposition.is_valid_for(hypergraph)
        assert value >= 1.0


class TestHypertreewidth:
    def test_edge_cover_number(self):
        hypergraph = Hypergraph(edges=[(1, 2, 3), (3, 4), (4, 5)])
        assert edge_cover_number(hypergraph, frozenset({1, 2, 3})) == 1
        assert edge_cover_number(hypergraph, frozenset({1, 4})) == 2
        assert edge_cover_number(hypergraph, frozenset()) == 0

    def test_acyclic_has_ghw_one(self):
        value, exact = generalized_hypertreewidth(single_edge_hypergraph(6))
        assert exact
        assert value == pytest.approx(1.0)

    def test_hypertree_decomposition_valid(self):
        hypergraph = cycle_hypergraph(5)
        decomposition = hypertree_decomposition(hypergraph)
        assert decomposition.is_valid_for(hypergraph)
        assert decomposition.width() >= 1

    def test_triangle_hypertreewidth(self):
        value, _ = generalized_hypertreewidth(cycle_hypergraph(3))
        assert value == pytest.approx(2.0)


class TestAdaptiveWidth:
    def test_uniform_fis_is_valid(self):
        hypergraph = grid_hypergraph(2, 3)
        mu = uniform_fractional_independent_set(hypergraph)
        assert is_fractional_independent_set(hypergraph, mu)

    def test_random_fis_is_valid(self):
        hypergraph = random_hypergraph(8, 10, arity=3, rng=0)
        mu = random_fractional_independent_set(hypergraph, rng=1)
        assert is_fractional_independent_set(hypergraph, mu)

    def test_mu_width_uniform_path(self):
        """On an arity-2 path, the uniform mu gives mu-width = (tw+1)/2 = 1."""
        hypergraph = path_hypergraph(5)
        mu = uniform_fractional_independent_set(hypergraph)
        assert mu_width(hypergraph, mu) == pytest.approx(1.0)

    def test_mu_width_rejects_invalid_mu(self):
        hypergraph = path_hypergraph(3)
        with pytest.raises(ValueError):
            mu_width(hypergraph, {v: 1.0 for v in hypergraph.vertices})

    def test_bounds_bracket(self):
        for hypergraph in [path_hypergraph(5), cycle_hypergraph(5), grid_hypergraph(2, 3)]:
            estimate = estimate_adaptive_width(hypergraph, samples=4, rng=0)
            assert estimate.lower_bound <= estimate.upper_bound + 1e-9

    def test_single_edge_adaptive_width_one(self):
        hypergraph = single_edge_hypergraph(5)
        estimate = estimate_adaptive_width(hypergraph, samples=4, rng=0)
        assert estimate.upper_bound == pytest.approx(1.0)
        assert estimate.lower_bound <= 1.0 + 1e-9

    def test_observation_34(self):
        for hypergraph in [
            path_hypergraph(6),
            cycle_hypergraph(5),
            complete_graph_hypergraph(5),
            grid_hypergraph(3, 3),
            single_edge_hypergraph(4),
        ]:
            assert observation_34_holds(hypergraph, rng=0)

    def test_bounded_by_resolution(self):
        estimate = estimate_adaptive_width(path_hypergraph(4), samples=2, rng=0)
        assert estimate.bounded_by(2.0) is True
        assert estimate.bounded_by(0.1) is False


class TestWidthProfile:
    def test_profile_on_grid(self):
        profile = width_profile(grid_hypergraph(2, 3), rng=0)
        assert profile.treewidth == 2
        assert profile.treewidth_exact
        assert profile.arity == 2
        assert profile.satisfies_lemma_12_chain()

    def test_profile_separates_treewidth_from_hypergraph_measures(self):
        """A single high-arity edge: tw = arity - 1 but hw = fhw = aw = 1."""
        profile = width_profile(single_edge_hypergraph(6), rng=0)
        assert profile.treewidth == 5
        assert profile.hypertreewidth == pytest.approx(1.0)
        assert profile.fractional_hypertreewidth == pytest.approx(1.0)
        assert profile.adaptive_width.upper_bound == pytest.approx(1.0)
        assert profile.satisfies_lemma_12_chain()

    def test_profile_on_empty_hypergraph(self):
        profile = width_profile(Hypergraph(), rng=0)
        assert profile.num_vertices == 0
        assert profile.treewidth == -1


@settings(max_examples=20, deadline=None)
@given(
    num_vertices=st.integers(min_value=2, max_value=8),
    num_edges=st.integers(min_value=1, max_value=10),
    arity=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
def test_lemma_12_relations_hold_on_random_hypergraphs(num_vertices, num_edges, arity, seed):
    """Per-instance consequences of Lemma 12: aw-lower <= fhw <= ghw, and
    Observation 34 (via the uniform fractional independent set)."""
    arity = min(arity, num_vertices)
    hypergraph = random_hypergraph(num_vertices, num_edges, arity, rng=seed, uniform=True)
    if hypergraph.isolated_vertices():
        hypergraph = hypergraph.with_singleton_edges(hypergraph.isolated_vertices())
    fhw, _ = fractional_hypertreewidth(hypergraph)
    ghw, _ = generalized_hypertreewidth(hypergraph)
    assert fhw <= ghw + 1e-6
    lower = adaptive_width_lower_bound(hypergraph, samples=3, rng=seed)
    assert lower <= fhw + 1e-6
    assert observation_34_holds(hypergraph)


@settings(max_examples=20, deadline=None)
@given(
    num_vertices=st.integers(min_value=2, max_value=7),
    num_edges=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=500),
)
def test_fractional_cover_lp_is_feasible_and_at_most_integral(num_vertices, num_edges, seed):
    """The LP optimum is feasible and never exceeds the greedy integral cover."""
    hypergraph = random_hypergraph(num_vertices, num_edges, arity=min(3, num_vertices), rng=seed)
    if hypergraph.isolated_vertices() or hypergraph.num_edges() == 0:
        hypergraph = hypergraph.with_singleton_edges(hypergraph.vertices)
    weights, value = fractional_edge_cover(hypergraph)
    for vertex in hypergraph.vertices:
        assert sum(w for edge, w in weights.items() if vertex in edge) >= 1.0 - 1e-6
    integral = edge_cover_number(hypergraph, frozenset(hypergraph.vertices))
    assert value <= integral + 1e-6
