"""The shard layer (:mod:`repro.shard`): partitioning invariants, sharded-vs-
unsharded count differentials (exact bit-identical across partitioners and
shard counts; approximate seed-equal where the contract promises it), service
integration, and stream-delta routing to the owning shard."""

import pytest

from repro.core import count_answers_exact
from repro.core.registry import REGISTRY
from repro.queries import parse_query
from repro.relational.signature import RelationSymbol
from repro.service import CountingService, CountRequest, ServiceConfig
from repro.shard import (
    ByRelationPartitioner,
    HashTuplePartitioner,
    ShardedStructure,
    ShardExecutor,
    build_union_decomposition,
    component_relation_names,
    make_partitioner,
    plan_sharded_count,
    query_components,
    shard_task_seed,
)
from repro.util.rng import derive_seed
from repro.workloads import database_from_graph, erdos_renyi_graph

CQ = "Ans(x, y) :- E(x, z), E(z, y)"
DCQ = "Ans(x) :- E(x, y), E(x, z), y != z"
ECQ = "Ans(x, y) :- E(x, y), !F(x, y)"
MULTI = "Ans(x, u) :- E(x, y), F(u, v)"
QUERIES = (CQ, DCQ, ECQ, MULTI)


def make_database(rng=7, size=9):
    database = database_from_graph(erdos_renyi_graph(size, 0.3, rng=rng))
    database.add_relation(RelationSymbol("F", 2))
    database.add_fact("F", (0, 1))
    database.add_fact("F", (2, 3))
    database.add_fact("F", (1, 4))
    return database


@pytest.fixture
def database():
    return make_database()


# ---------------------------------------------------------------- partitioners
class TestPartitioners:
    def test_hash_tuple_is_deterministic_across_instances(self):
        first = HashTuplePartitioner(4)
        second = HashTuplePartitioner(4)
        for fact in [(0, 1), (1, 0), ("a", "b"), (2, 2)]:
            shard = first.shard_of("E", fact)
            assert 0 <= shard < 4
            assert second.shard_of("E", fact) == shard

    def test_hash_tuple_distinguishes_relations(self):
        partitioner = HashTuplePartitioner(64)
        placements = {partitioner.shard_of(name, (0, 1)) for name in "EFGHIJKL"}
        assert len(placements) > 1

    def test_by_relation_keeps_relations_whole(self, database):
        sharded = ShardedStructure.from_structure(database, ByRelationPartitioner(3))
        for name in ("E", "F"):
            counts = sharded.relation_shard_counts(name)
            assert sum(1 for count in counts if count > 0) <= 1

    def test_by_relation_explicit_assignment(self):
        partitioner = ByRelationPartitioner(2, assignment={"E": 1})
        assert partitioner.shard_of("E", (0, 1)) == 1
        with pytest.raises(ValueError, match="only 2 shards"):
            ByRelationPartitioner(2, assignment={"E": 5})

    def test_make_partitioner_validates(self):
        assert make_partitioner("tuple", 2).kind == "tuple"
        assert make_partitioner("relation", 2).kind == "relation"
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("range", 2)
        with pytest.raises(ValueError, match="no relation assignment"):
            make_partitioner("tuple", 2, assignment={"E": 0})
        with pytest.raises(ValueError, match="at least 1"):
            HashTuplePartitioner(0)


# ----------------------------------------------------------- sharded structure
class TestShardedStructure:
    @pytest.mark.parametrize("kind", ["tuple", "relation"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_shards_partition_the_facts(self, database, kind, num_shards):
        sharded = ShardedStructure.from_structure(database, make_partitioner(kind, num_shards))
        assert sharded.num_facts() == database.num_facts()
        for name in ("E", "F"):
            slices = [shard.relation(name) for shard in sharded.shards]
            union = set().union(*slices)
            assert union == database.relation(name)
            assert sum(len(piece) for piece in slices) == len(union)
        assert sharded.merged() == database

    def test_every_shard_carries_the_full_universe(self, database):
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(3))
        for shard in sharded.shards:
            assert shard.universe == database.universe
        sharded.add_fact("E", ("new", "newer"))
        for shard in sharded.shards:
            assert {"new", "newer"} <= shard.universe

    def test_mutations_route_to_the_owning_shard(self, database):
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        fact = ("p", "q")
        owner = sharded.partitioner.shard_of("E", fact)
        before = [shard.num_facts() for shard in sharded.shards]
        sharded.add_fact("E", fact)
        assert sharded.has_fact("E", fact)
        after = [shard.num_facts() for shard in sharded.shards]
        assert after[owner] == before[owner] + 1
        assert after[1 - owner] == before[1 - owner]
        sharded.remove_fact("E", fact)
        assert not sharded.has_fact("E", fact)
        with pytest.raises(KeyError):
            sharded.remove_fact("E", fact)
        with pytest.raises(KeyError):
            sharded.remove_fact("nope", (0, 1))

    def test_fingerprint_restriction_ignores_other_relations(self, database):
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        restricted = sharded.version_fingerprint(["E"])
        full = sharded.version_fingerprint()
        sharded.add_fact("F", (5, 5))
        assert sharded.version_fingerprint(["E"]) == restricted
        assert sharded.version_fingerprint() != full

    def test_owner_shards(self, database):
        assignment = {"E": 0, "F": 1}
        sharded = ShardedStructure.from_structure(
            database, ByRelationPartitioner(2, assignment=assignment)
        )
        assert sharded.owner_shards(["E"]) == frozenset({0})
        assert sharded.owner_shards(["F"]) == frozenset({1})
        assert sharded.owner_shards(["E", "F"]) == frozenset()
        sharded.add_relation(RelationSymbol("G", 1))
        assert sharded.owner_shards(["G"]) == frozenset({0, 1})
        with pytest.raises(KeyError):
            sharded.owner_shards(["nope"])

    def test_token_is_distinct_from_the_shards(self, database):
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        tokens = {shard.structure_token for shard in sharded.shards}
        assert sharded.structure_token not in tokens
        assert database.structure_token != sharded.structure_token


# -------------------------------------------------------------- decomposition
class TestQueryComponents:
    def test_connected_query_is_one_component(self):
        query = parse_query(CQ)
        assert query_components(query) == [query]

    def test_components_split_and_cover(self):
        components = query_components(parse_query(MULTI))
        assert [str(component) for component in components] == [
            "Ans(x) :- E(x, y)",
            "Ans(u) :- F(u, v)",
        ]

    def test_disequality_couples_components(self):
        query = parse_query("Ans(x, u) :- E(x, y), F(u, v), x != u")
        assert len(query_components(query)) == 1
        without = parse_query("Ans(x, u) :- E(x, y), F(u, v), x != y")
        assert len(query_components(without)) == 2

    def test_component_relations_include_negations(self):
        query = parse_query("Ans(x) :- E(x, y), !F(x, y)")
        (component,) = query_components(query)
        assert component_relation_names(component) == ("E", "F")

    def test_component_counts_multiply(self, database):
        query = parse_query(MULTI)
        product = 1
        for component in query_components(query):
            product *= count_answers_exact(component, database)
        assert product == count_answers_exact(query, database)


# ------------------------------------------------------ sharded differentials
class TestShardedDifferentials:
    @pytest.mark.parametrize("kind", ["tuple", "relation"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("text", QUERIES)
    def test_exact_counts_are_bit_identical(self, kind, num_shards, text):
        database = make_database()
        query = parse_query(text)
        sharded = ShardedStructure.from_structure(database, make_partitioner(kind, num_shards))
        expected = count_answers_exact(query, database)
        result = ShardExecutor(mode="serial").count(query, sharded, scheme="exact")
        assert result.estimate == expected

    @pytest.mark.parametrize("rng", [0, 1, 2])
    @pytest.mark.parametrize("kind", ["tuple", "relation"])
    def test_randomized_exact_differentials(self, rng, kind):
        from repro.service import mixed_query_workload

        database = make_database(rng=20 + rng, size=8)
        queries = mixed_query_workload(6, num_variables=(3, 4), rng=rng)
        for num_shards in (2, 4):
            sharded = ShardedStructure.from_structure(database, make_partitioner(kind, num_shards))
            executor = ShardExecutor(mode="serial")
            for query in queries:
                expected = count_answers_exact(query, database)
                result = executor.count(query, sharded, scheme="exact")
                assert result.estimate == expected, (kind, num_shards, str(query))

    @pytest.mark.parametrize(
        "scheme,text",
        [("fpras_cq", CQ), ("fptras_dcq", DCQ), ("fptras_ecq", ECQ)],
    )
    def test_single_strategy_estimates_are_seed_equal(self, database, scheme, text):
        """A fully-localising query routes to its owning shard with the seed
        passed through: the estimate is bit-identical to the unsharded one."""
        query = parse_query(text)
        sharded = ShardedStructure.from_structure(
            database, ByRelationPartitioner(4, assignment={"E": 2, "F": 2})
        )
        plan = plan_sharded_count(query, sharded)
        assert plan.strategy == "single"
        assert plan.tasks[0].seed_path is None
        for seed in (3, 11):
            sharded_estimate = ShardExecutor(mode="serial").count(
                query, sharded, scheme=scheme, epsilon=0.5, delta=0.25, seed=seed
            )
            direct = REGISTRY.count(scheme, query, database, epsilon=0.5, delta=0.25, rng=seed)
            assert sharded_estimate.estimate == direct.estimate

    def test_local_strategy_matches_manual_seed_derivation(self, database):
        query = parse_query(MULTI)
        sharded = ShardedStructure.from_structure(
            database, ByRelationPartitioner(2, assignment={"E": 0, "F": 1})
        )
        plan = plan_sharded_count(query, sharded)
        assert plan.strategy == "local" and len(plan.tasks) == 2
        seed = 17
        result = ShardExecutor(mode="serial").count(
            query, sharded, scheme="fptras_ecq", epsilon=0.5, delta=0.25, seed=seed
        )
        expected = 1.0
        for task in plan.tasks:
            expected *= REGISTRY.count(
                "fptras_ecq",
                task.query,
                sharded.shards[task.shard],
                epsilon=0.5,
                delta=0.25,
                rng=derive_seed(seed, *task.seed_path),
            ).estimate
        assert result.estimate == expected
        assert shard_task_seed(seed, plan.tasks[0]) == derive_seed(seed, *plan.tasks[0].seed_path)
        assert shard_task_seed(None, plan.tasks[0]) is None

    def test_union_estimates_are_reproducible_under_equal_seeds(self, database):
        query = parse_query(DCQ)
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        assert plan_sharded_count(query, sharded).strategy == "union"
        executor = ShardExecutor(mode="serial")
        first = executor.count(query, sharded, scheme="fptras_dcq", epsilon=0.5, delta=0.25, seed=5)
        second = executor.count(
            query, sharded, scheme="fptras_dcq", epsilon=0.5, delta=0.25, seed=5
        )
        assert first.estimate == second.estimate
        assert first.strategy == "union"

    def test_union_decomposition_structure(self, database):
        query = parse_query(ECQ)
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        decomposition = build_union_decomposition(query, sharded)
        bearing = [
            index
            for index, count in enumerate(sharded.relation_shard_counts("E"))
            if count > 0
        ]
        assert len(decomposition.queries) == len(bearing)
        # Negated relations ship whole; positive slices partition E.
        assert decomposition.tagged.relation("F") == database.relation("F")
        slices = [
            decomposition.tagged.relation(f"E@s{index}")
            for index in range(sharded.num_shards)
        ]
        assert set().union(*slices) == database.relation("E")

    def test_union_of_empty_positive_relation_counts_zero(self):
        database = make_database()
        database.add_relation(RelationSymbol("G", 2))
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        query = parse_query("Ans(x) :- G(x, y)")
        result = ShardExecutor(mode="serial").count(query, sharded, scheme="exact")
        assert result.estimate == 0

    def test_merged_fallback_past_the_union_cap(self, database, monkeypatch):
        import repro.shard.plan as plan_module

        monkeypatch.setattr(plan_module, "MAX_UNION_COMPONENTS", 1)
        query = parse_query(CQ)
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        plan = plan_sharded_count(query, sharded)
        assert plan.strategy == "merged"
        result = ShardExecutor(mode="serial").count(query, sharded, scheme="exact", plan=plan)
        assert result.estimate == count_answers_exact(query, database)


# --------------------------------------------------------- service integration
class TestServiceIntegration:
    @pytest.mark.parametrize("kind,num_shards", [("relation", 2), ("tuple", 2)])
    def test_count_batch_matches_unsharded_service(self, database, kind, num_shards):
        queries = [parse_query(text) for text in QUERIES]
        sharded = ShardedStructure.from_structure(database, make_partitioner(kind, num_shards))
        sharded_report = CountingService(
            sharded, ServiceConfig(executor="serial")
        ).count_batch(queries, seed=11)
        plain_report = CountingService(
            database, ServiceConfig(executor="serial")
        ).count_batch(queries, seed=11)
        assert sharded_report.estimates() == plain_report.estimates()
        assert sharded_report.cache_misses == len(queries)

    def test_resubmission_hits_the_result_cache(self, database):
        queries = [parse_query(text) for text in QUERIES]
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        service = CountingService(sharded, ServiceConfig(executor="serial"))
        service.count_batch(queries, seed=11)
        again = service.count_batch(queries, seed=11)
        assert again.cache_hits == len(queries)
        assert again.executed_executor == "cache"

    def test_mutation_invalidates_exactly_the_touched_relation(self, database):
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        service = CountingService(sharded, ServiceConfig(executor="serial"))
        query = parse_query(CQ)  # mentions only E
        service.submit(query, seed=3)
        sharded.add_fact("F", (6, 6))
        assert service.submit(query, seed=3).cache == "hit"
        sharded.add_fact("E", ("fresh", 0))  # guaranteed-new fact
        after = service.submit(query, seed=3)
        assert after.cache == "miss"
        assert after.estimate == count_answers_exact(query, sharded.merged())

    def test_thread_executor_agrees_with_serial_on_shards(self, database):
        queries = [parse_query(MULTI), parse_query(CQ)]
        sharded = ShardedStructure.from_structure(
            database, ByRelationPartitioner(2, assignment={"E": 0, "F": 1})
        )
        serial = CountingService(sharded, ServiceConfig(executor="serial"))
        threaded = CountingService(sharded, ServiceConfig(executor="thread", max_workers=2))
        assert (
            serial.count_batch(queries, seed=9).estimates()
            == threaded.count_batch(queries, seed=9).estimates()
        )

    def test_cli_shard_subcommand(self, capsys):
        from repro.cli import main

        status = main(
            [
                "shard",
                "--workload",
                "6",
                "--shards",
                "3",
                "--seed",
                "5",
                "--executor",
                "serial",
                "--compare",
            ]
        )
        assert status == 0
        output = capsys.readouterr().out
        assert "sharded database: 3 shards" in output
        assert "compare: 6/6" in output


# ------------------------------------------------------- stream-delta routing
class TestShardSubscription:
    def make_subscribed(self, refresh="eager", **kwargs):
        database = make_database()
        sharded = ShardedStructure.from_structure(
            database, ByRelationPartitioner(2, assignment={"E": 0, "F": 1})
        )
        service = CountingService(sharded, ServiceConfig(executor="serial"))
        subscription = service.subscribe(
            CountRequest(query=parse_query(MULTI), method="exact"),
            refresh=refresh,
            **kwargs,
        )
        return service, sharded, subscription

    def test_deltas_route_to_the_owning_shard(self):
        service, sharded, subscription = self.make_subscribed()
        assert subscription.strategy == "local"
        assert subscription.component_refreshes == (0, 0)
        sharded.add_fact("F", (7, 8))
        live = subscription.read()
        assert live.mode == "shard-partial"
        assert subscription.component_refreshes == (0, 1)
        assert live.estimate == count_answers_exact(parse_query(MULTI), sharded.merged())
        sharded.add_fact("E", (0, 8))
        subscription.read()
        assert subscription.component_refreshes == (1, 1)

    def test_untouched_shard_reads_are_free_and_fresh(self):
        service, sharded, subscription = self.make_subscribed()
        sharded.add_relation(RelationSymbol("G", 2))
        sharded.add_fact("G", (0, 1))
        live = subscription.read()
        assert live.fresh and not live.refreshed
        assert subscription.component_refreshes == (0, 0)

    def test_randomized_mutation_stream_stays_correct(self):
        import numpy

        service, sharded, subscription = self.make_subscribed()
        query = parse_query(MULTI)
        generator = numpy.random.default_rng(3)
        universe = sorted(sharded.universe)
        for step in range(40):
            name = "E" if generator.random() < 0.5 else "F"
            u = universe[int(generator.integers(len(universe)))]
            v = universe[int(generator.integers(len(universe)))]
            if sharded.has_fact(name, (u, v)) and generator.random() < 0.5:
                sharded.remove_fact(name, (u, v))
            else:
                sharded.add_fact(name, (u, v))
            live = subscription.read()
            assert live.fresh
            assert live.estimate == count_answers_exact(query, sharded.merged())

    def test_debounced_policy_coalesces_ticks(self):
        service, sharded, subscription = self.make_subscribed(refresh="debounced", debounce_ticks=3)
        sharded.add_fact("F", (7, 8))
        live = subscription.read()
        assert not live.fresh and not live.refreshed
        assert live.pending_ticks == 1
        sharded.add_fact("F", (8, 7))
        sharded.add_fact("F", (6, 7))
        live = subscription.read()
        assert live.refreshed and live.fresh
        assert subscription.component_refreshes == (0, 1)

    def test_forced_refresh_overrides_policy(self):
        service, sharded, subscription = self.make_subscribed(
            refresh="debounced", debounce_ticks=100
        )
        sharded.add_fact("F", (7, 8))
        live = subscription.refresh()
        assert live.fresh and live.refreshed

    def test_ownership_migration_is_detected(self):
        """A hash-by-tuple relation whose facts initially land on one shard
        localises — but a later fact can route to another shard.  The
        subscription must see the cross-shard mutation (aggregate
        fingerprints), re-plan, and keep serving correct counts."""
        partitioner = HashTuplePartitioner(2)
        shard0_facts = []
        shard1_fact = None
        for u in range(50):
            fact = (u, u + 100)
            if partitioner.shard_of("E", fact) == 0:
                if len(shard0_facts) < 3:
                    shard0_facts.append(fact)
            elif shard1_fact is None:
                shard1_fact = fact
            if len(shard0_facts) == 3 and shard1_fact is not None:
                break
        from repro.relational.structure import Database

        database = Database(relations={"E": shard0_facts})
        database.add_element(shard1_fact[0])
        database.add_element(shard1_fact[1])
        sharded = ShardedStructure.from_structure(database, partitioner)
        service = CountingService(sharded, ServiceConfig(executor="serial"))
        query = parse_query("Ans(x) :- E(x, y)")
        subscription = service.subscribe(CountRequest(query=query, method="exact"))
        assert subscription.strategy == "single"
        sharded.add_fact("E", shard1_fact)  # routes to the *other* shard
        live = subscription.read()
        assert live.fresh
        assert live.estimate == count_answers_exact(query, sharded.merged())

    def test_union_count_works_without_a_result_cache(self):
        """Union/merged inline counts must not depend on the result cache
        (result_cache_size=0 disables caching entirely)."""
        database = make_database()
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        service = CountingService(sharded, ServiceConfig(executor="serial", result_cache_size=0))
        query = parse_query(CQ)
        result = service.submit(query, seed=3)
        assert result.cache == "miss"
        assert result.shard_strategy == "union"
        assert result.estimate == count_answers_exact(query, database)

    def test_union_strategy_subscription_recounts_whole(self):
        database = make_database()
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        service = CountingService(sharded, ServiceConfig(executor="serial"))
        query = parse_query(CQ)
        subscription = service.subscribe(CountRequest(query=query, method="exact"))
        assert subscription.strategy == "union"
        assert subscription.component_refreshes == ()
        sharded.add_fact("E", (0, 8))
        live = subscription.read()
        assert live.mode == "recount"
        assert live.estimate == count_answers_exact(query, sharded.merged())

    def test_close_and_stats(self):
        service, sharded, subscription = self.make_subscribed()
        assert service.stats()["stream"]["subscriptions"] == 1
        subscription.close()
        subscription.close()
        assert service.stats()["stream"]["subscriptions"] == 0
        with pytest.raises(RuntimeError, match="closed"):
            subscription.read()

    def test_bad_policy_rejected(self):
        database = make_database()
        sharded = ShardedStructure.from_structure(database, HashTuplePartitioner(2))
        service = CountingService(sharded, ServiceConfig(executor="serial"))
        with pytest.raises(ValueError, match="unknown refresh policy"):
            service.subscribe(CountRequest(query=parse_query(CQ), method="exact"), refresh="lazy")
