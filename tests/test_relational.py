"""Tests for signatures, structures/databases, the CSP engine and the
homomorphism oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    CSPInstance,
    Constraint,
    Database,
    NotEqualConstraint,
    NotInRelationConstraint,
    RelationSymbol,
    Signature,
    Structure,
    count_homomorphisms,
    enumerate_homomorphisms,
    exists_homomorphism,
    find_homomorphism,
    is_homomorphism,
)
from repro.workloads import database_from_graph, erdos_renyi_graph


class TestSignature:
    def test_basic(self):
        signature = Signature.from_arities({"E": 2, "R": 3})
        assert signature["E"].arity == 2
        assert "R" in signature
        assert signature.arity() == 3
        assert len(signature) == 2

    def test_conflicting_arity_rejected(self):
        signature = Signature([RelationSymbol("E", 2)])
        with pytest.raises(ValueError):
            signature.add(RelationSymbol("E", 3))

    def test_subsignature(self):
        small = Signature.from_arities({"E": 2})
        big = Signature.from_arities({"E": 2, "F": 1})
        assert small <= big
        assert not big <= small

    def test_union(self):
        first = Signature.from_arities({"E": 2})
        second = Signature.from_arities({"F": 1})
        union = first.union(second)
        assert "E" in union and "F" in union

    def test_invalid_symbols(self):
        with pytest.raises(ValueError):
            RelationSymbol("", 1)
        with pytest.raises(ValueError):
            RelationSymbol("E", 0)


class TestStructure:
    def test_from_relations(self):
        structure = Structure.from_relations({"E": [(1, 2), (2, 3)]})
        assert structure.has_fact("E", (1, 2))
        assert not structure.has_fact("E", (2, 1))
        assert structure.universe == frozenset({1, 2, 3})

    def test_size_formula(self):
        """||A|| = |sig| + |U| + sum |R| * ar(R)."""
        structure = Structure.from_relations({"E": [(1, 2), (2, 3)], "P": [(1,)]})
        assert structure.size() == 2 + 3 + (2 * 2 + 1 * 1)

    def test_arity_mismatch_rejected(self):
        structure = Structure.from_relations({"E": [(1, 2)]})
        with pytest.raises(ValueError):
            structure.add_fact("E", (1, 2, 3))

    def test_empty_relation_needs_signature(self):
        with pytest.raises(ValueError):
            Structure.from_relations({"E": []})
        structure = Structure(signature=Signature.from_arities({"E": 2}))
        assert structure.relation("E") == frozenset()

    def test_hypergraph_of_structure(self):
        structure = Structure.from_relations({"R": [(1, 2, 3)], "E": [(3, 4)]})
        hypergraph = structure.hypergraph()
        assert frozenset({1, 2, 3}) in hypergraph.edges
        assert frozenset({3, 4}) in hypergraph.edges

    def test_restrict_universe(self):
        structure = Structure.from_relations({"E": [(1, 2), (2, 3)]})
        restricted = structure.restrict_universe([1, 2])
        assert restricted.has_fact("E", (1, 2))
        assert not restricted.has_fact("E", (2, 3))

    def test_with_unary_relation(self):
        structure = Structure.from_relations({"E": [(1, 2)]})
        extended = structure.with_unary_relation("P", [1])
        assert extended.has_fact("P", (1,))
        assert not structure.signature.get("P")

    def test_complement_relation(self):
        structure = Structure.from_relations({"E": [(1, 2)]}, universe=[1, 2])
        complement = structure.complement_relation("E", 2)
        assert (1, 2) not in complement
        assert (2, 1) in complement
        assert len(complement) == 3

    def test_from_graph_symmetric(self):
        database = Database.from_graph_edges([(1, 2)], symmetric=True)
        assert database.has_fact("E", (1, 2)) and database.has_fact("E", (2, 1))

    def test_equality(self):
        first = Structure.from_relations({"E": [(1, 2)]})
        second = Structure.from_relations({"E": [(1, 2)]})
        assert first == second


class TestCSP:
    def test_table_constraint_solutions(self):
        csp = CSPInstance(
            {"x": {1, 2}, "y": {1, 2}},
            [Constraint(scope=("x", "y"), allowed=frozenset({(1, 2), (2, 1)}))],
        )
        solutions = list(csp.iter_solutions())
        assert len(solutions) == 2

    def test_not_equal_constraint(self):
        csp = CSPInstance(
            {"x": {1, 2}, "y": {1, 2}},
            [NotEqualConstraint("x", "y")],
        )
        assert csp.count_solutions() == 2

    def test_not_in_relation_constraint(self):
        csp = CSPInstance(
            {"x": {1, 2}, "y": {1, 2}},
            [NotInRelationConstraint(scope=("x", "y"), forbidden=frozenset({(1, 1)}))],
        )
        assert csp.count_solutions() == 3

    def test_propagation_detects_unsatisfiable(self):
        csp = CSPInstance(
            {"x": {1}, "y": {2}},
            [Constraint(scope=("x", "y"), allowed=frozenset({(1, 1)}))],
        )
        assert not csp.is_satisfiable()

    def test_mixed_constraints(self):
        csp = CSPInstance(
            {"x": {1, 2, 3}, "y": {1, 2, 3}},
            [
                Constraint(scope=("x", "y"), allowed=frozenset({(1, 2), (2, 2), (3, 1)})),
                NotEqualConstraint("x", "y"),
            ],
        )
        assert csp.count_solutions() == 2  # (1,2) and (3,1)

    def test_limit(self):
        csp = CSPInstance({"x": set(range(10))}, [])
        assert len(list(csp.iter_solutions(limit=3))) == 3

    def test_unknown_scope_variable_rejected(self):
        with pytest.raises(KeyError):
            CSPInstance({"x": {1}}, [NotEqualConstraint("x", "z")])

    def test_bad_table_tuple_rejected(self):
        with pytest.raises(ValueError):
            Constraint(scope=("x", "y"), allowed=frozenset({(1,)}))


class TestHomomorphism:
    def test_triangle_to_triangle(self):
        triangle = Structure.from_graph([(0, 1), (1, 2), (0, 2)])
        assert exists_homomorphism(triangle, triangle)
        # Hom(K3 -> K3) = 3! proper colourings-like maps = 6 automorphisms ...
        # actually every injective map works and non-injective maps hit a
        # non-edge, so the count is 6.
        assert count_homomorphisms(triangle, triangle) == 6

    def test_edge_to_triangle(self):
        edge = Structure.from_graph([(0, 1)])
        triangle = Structure.from_graph([(0, 1), (1, 2), (0, 2)])
        assert count_homomorphisms(edge, triangle) == 6

    def test_triangle_to_bipartite_has_none(self):
        triangle = Structure.from_graph([(0, 1), (1, 2), (0, 2)])
        edge = Structure.from_graph([("a", "b")])
        assert not exists_homomorphism(triangle, edge)
        assert find_homomorphism(triangle, edge) is None

    def test_path_to_edge(self):
        path = Structure.from_graph([(0, 1), (1, 2)])
        edge = Structure.from_graph([("a", "b")])
        count = count_homomorphisms(path, edge)
        assert count == 2  # alternate a,b,a or b,a,b

    def test_found_mapping_is_homomorphism(self):
        source = Structure.from_graph([(0, 1), (1, 2)])
        target = Structure.from_graph([(0, 1), (1, 2), (2, 3)])
        mapping = find_homomorphism(source, target)
        assert mapping is not None
        assert is_homomorphism(mapping, source, target)

    def test_empty_source(self):
        empty = Structure()
        target = Structure.from_graph([(0, 1)])
        assert exists_homomorphism(empty, target)
        assert count_homomorphisms(empty, target) == 1

    def test_signature_mismatch(self):
        source = Structure.from_relations({"R": [(1, 2)]})
        target = Structure.from_graph([(0, 1)])
        with pytest.raises(ValueError):
            exists_homomorphism(source, target)

    def test_unary_relations_respected(self):
        source = Structure.from_relations({"E": [("x", "y")], "P": [("x",)]})
        target = Structure.from_relations({"E": [(1, 2), (2, 1)], "P": [(1,)]})
        homomorphisms = list(enumerate_homomorphisms(source, target))
        assert all(mapping["x"] == 1 for mapping in homomorphisms)
        assert len(homomorphisms) == 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200), n=st.integers(min_value=3, max_value=6))
def test_homomorphism_count_matches_bruteforce(seed, n):
    """The CSP-based count agrees with a direct brute-force count of maps."""
    import itertools

    source = Structure.from_graph([(0, 1), (1, 2)])
    host_graph = erdos_renyi_graph(n, 0.5, rng=seed)
    target = database_from_graph(host_graph)
    if not target.universe:
        return
    source_vertices = sorted(source.universe)
    brute = 0
    for images in itertools.product(sorted(target.universe), repeat=len(source_vertices)):
        mapping = dict(zip(source_vertices, images))
        if is_homomorphism(mapping, source, target):
            brute += 1
    assert count_homomorphisms(source, target) == brute
