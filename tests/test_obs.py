"""Tests for `repro.obs`: span tracing, the metrics registry, per-scheme cost
profiles — and the telemetry contract that recording any of them never
touches RNG state (estimates bit-identical traced vs untraced, across
executor back-ends and under fault injection)."""

import json
import pickle
import threading

import pytest

from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    ProfileStore,
    Tracer,
    activate,
    current_span,
    current_tracer,
    fingerprint_class,
    span,
    tracing_active,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.queries import parse_query
from repro.relational.structure import Database
from repro.resilience import uniform_plan
from repro.resilience.retry import RetryPolicy
from repro.service import (
    CountingService,
    CountRequest,
    ServiceConfig,
    mixed_query_workload,
    workload_database,
)


@pytest.fixture
def database():
    return Database.from_relations(
        {
            "E": [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1)],
            "F": [(1, 3), (2, 4)],
        }
    )


CQ = "Ans(x) :- E(x, y), E(y, z)"
DCQ = "Ans(x) :- E(x, y), E(y, z), x != z"
ECQ = "Ans(x) :- E(x, y), !F(x, y)"


# --------------------------------------------------------------------- trace
class TestTrace:
    def test_spans_are_noops_without_an_active_tracer(self):
        assert not tracing_active()
        with span("anything", key=1) as recorded:
            assert recorded is NOOP_SPAN
            recorded.set(more=2)
            recorded.event("ignored")
        assert current_tracer() is None
        assert current_span() is NOOP_SPAN

    def test_span_tree_nests_under_the_active_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            with span("outer", depth=0) as outer:
                with span("inner", depth=1):
                    assert current_span().name == "inner"
                outer.event("note", detail="x")
        assert [root.name for root in tracer.roots] == ["outer"]
        (root,) = tracer.roots
        assert [child.name for child in root.children] == ["inner"]
        assert root.attrs == {"depth": 0}
        assert root.events == [{"note": "note", "detail": "x"}]
        assert root.seconds >= root.children[0].seconds >= 0.0

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with activate(tracer):
                with span("failing"):
                    raise ValueError("boom")
        (root,) = tracer.roots
        assert root.status == "error"
        assert not tracing_active()

    def test_activate_none_and_same_tracer_are_passthrough(self):
        with activate(None):
            assert not tracing_active()
        tracer = Tracer()
        with activate(tracer):
            with activate(tracer):  # re-entrant: no new root context
                with span("only"):
                    pass
        assert len(tracer.find("only")) == 1

    def test_spans_pickle_and_reattach(self):
        tracer = Tracer()
        with activate(tracer):
            with span("worker.side", index=3) as worker_span:
                worker_span.event("did work")
        clone = pickle.loads(pickle.dumps(tracer.roots[0]))
        home = Tracer()
        with activate(home):
            with span("home.side") as parent:
                parent.attach(clone)
        (root,) = home.roots
        assert [child.name for child in root.children] == ["worker.side"]
        assert root.children[0].attrs == {"index": 3}

    def test_to_jsonl_round_trips(self):
        tracer = Tracer()
        with activate(tracer):
            with span("a", n=1):
                with span("b"):
                    pass
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["name"] == "a"
        assert payload["children"][0]["name"] == "b"


# ------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_and_gauge(self):
        counter, gauge = Counter(), Gauge()
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_quantiles_are_monotone(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.004, 0.008, 0.016, 0.5):
            histogram.observe(value)
        summary = histogram.to_dict()
        assert summary["count"] == 6
        assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]

    def test_registry_keys_series_by_name_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("requests", cache="hit").inc()
        registry.counter("requests", cache="miss").inc(2)
        assert registry.counter("requests", cache="hit") is registry.counter(
            "requests", cache="hit"
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == {"cache=hit": 1, "cache=miss": 2}

    def test_collectors_appear_in_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector("cache.result", lambda: {"hits": 1, "hit_rate": 0.5})
        assert registry.snapshot()["collected"]["cache.result"]["hit_rate"] == 0.5

    def test_prometheus_render(self):
        registry = MetricsRegistry()
        registry.counter("service.requests", cache="hit").inc(4)
        registry.histogram("scheme.latency_seconds", scheme="exact").observe(0.01)
        registry.register_collector("breaker", lambda: {"tracked_rungs": 0})
        text = registry.render_prometheus()
        assert '# TYPE repro_service_requests counter' in text
        assert 'repro_service_requests{cache="hit"} 4' in text
        assert 'repro_scheme_latency_seconds_count{scheme="exact"} 1' in text
        assert "repro_breaker_tracked_rungs 0" in text
        for line in text.splitlines():
            if line and not line.startswith("#"):
                float(line.rpartition(" ")[2])  # every sample ends in a number


# ------------------------------------------------------------------ profiles
class TestProfiles:
    def test_fingerprint_class_buckets_by_order_of_magnitude(self):
        assert fingerprint_class(1_500) == fingerprint_class(2_000)
        assert fingerprint_class(1_500) != fingerprint_class(1_000_000)

    def test_record_and_summary(self):
        store = ProfileStore()
        for seconds in (0.01, 0.02, 0.03):
            store.record("key|q", 100, "fpras_cq", seconds, 42.0)
        summary = store.summary("key|q", 110)  # same size bucket
        assert summary["schemes"]["fpras_cq"]["runs"] == 3
        assert summary["schemes"]["fpras_cq"]["p50_seconds"] == pytest.approx(
            0.02, rel=0.5
        )
        assert store.summary("key|q", 10**9) == {}  # different bucket: no data

    def test_json_round_trip_and_merge(self):
        store = ProfileStore()
        store.record("a", 50, "exact", 0.001, 7.0)
        restored = ProfileStore.from_json(store.to_json())
        assert restored.summary("a", 50) == store.summary("a", 50)
        other = ProfileStore()
        other.record("a", 50, "exact", 0.002, 7.0)
        other.record("b", 50, "exact", 0.005, 1.0)
        restored.merge(other)
        assert restored.summary("a", 50)["schemes"]["exact"]["runs"] == 2
        assert restored.summary("b", 50)["schemes"]["exact"]["runs"] == 1


class TestProfileConcurrency:
    def test_concurrent_records_lose_no_increments(self):
        """Many threads hammering one sketch: every increment survives."""
        store = ProfileStore()
        threads, records_each = 16, 250

        def hammer(worker: int) -> None:
            for i in range(records_each):
                store.record("key|q", 100, "fpras_cq", 0.001 * (worker + 1), float(i))

        pool = [threading.Thread(target=hammer, args=(w,)) for w in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        profile = store.get("key|q", 100, "fpras_cq")
        assert profile.runs == threads * records_each
        assert profile.latency.count == threads * records_each
        assert profile.total_database_size == pytest.approx(
            100.0 * threads * records_each
        )
        # Exact sum of 16 workers' distinct estimate series — a lost += would
        # shift the total.
        per_worker = sum(range(records_each))
        assert profile.total_estimate_magnitude == pytest.approx(
            float(per_worker * threads)
        )
        assert store.version == threads * records_each


class TestProfilePersistence:
    def test_v1_snapshot_loads_with_engine_defaulted(self, tmp_path):
        store = ProfileStore()
        store.record("a|q", 120, "exact", 0.004, 3.0, engine="columnar")
        payload = json.loads(store.to_json())
        assert payload["version"] == 2
        # Strip the engine labels to fake a version-1 snapshot.
        for row in payload["profiles"]:
            del row["engine"]
        payload["version"] = 1
        v1 = ProfileStore.from_json(json.dumps(payload))
        assert v1.get("a|q", 120, "exact", engine="columnar") is None
        assert v1.get("a|q", 120, "exact", engine="indexed").runs == 1
        # And a v2 round trip through save/load preserves the engine.
        path = tmp_path / "profiles.json"
        store.save(path)
        restored = ProfileStore.load(path)
        assert restored.get("a|q", 120, "exact", engine="columnar").runs == 1
        assert restored.summary("a|q", 120) == store.summary("a|q", 120)

    def test_from_dict_tolerates_truncated_bucket_counts(self):
        store = ProfileStore()
        for seconds in (0.0005, 0.05, 5.0):
            store.record("a|q", 80, "exact", seconds)
        row = json.loads(store.to_json())["profiles"][0]
        full = row["profile"]["latency"]["bucket_counts"]
        row["profile"]["latency"]["bucket_counts"] = full[:3]  # partial write
        rebuilt = ProfileStore.from_json(json.dumps({"version": 2, "profiles": [row]}))
        profile = rebuilt.get("a|q", 80, "exact")
        # count/sum stay authoritative; missing trailing buckets read as zero.
        assert profile.latency.count == 3
        assert profile.latency.total == pytest.approx(0.0005 + 0.05 + 5.0)
        assert sum(profile.latency.bucket_counts) == sum(full[:3])

    def test_merge_propagates_min_max(self):
        left, right = ProfileStore(), ProfileStore()
        left.record("a|q", 60, "exact", 0.02)
        right.record("a|q", 60, "exact", 0.000002)
        right.record("a|q", 60, "exact", 8.0)
        left.merge(right)
        profile = left.get("a|q", 60, "exact")
        assert profile.runs == 3
        assert profile.latency.minimum == pytest.approx(0.000002)
        assert profile.latency.maximum == pytest.approx(8.0)

    def test_merge_rebuckets_mismatched_boundaries(self):
        """An old snapshot with different histogram edges merges without
        losing count/sum consistency, tallying dropped precision."""
        target = ProfileStore()
        target.record("a|q", 60, "exact", 0.02)
        row = json.loads(target.to_json())["profiles"][0]
        # Forge a foreign snapshot whose edges exceed ours (1000s) with mass
        # in a bucket our finite edges cannot place.
        foreign = dict(row)
        foreign["profile"] = {
            "runs": 2,
            "total_database_size": 120.0,
            "total_estimate_magnitude": 0.0,
            "latency": {
                "boundaries": [0.05, 1000.0],
                "bucket_counts": [1, 1, 0],
                "count": 2,
                "sum": 100.04,
                "min": 0.04,
                "max": 100.0,
            },
        }
        other = ProfileStore.from_json(
            json.dumps({"version": 2, "profiles": [foreign]})
        )
        before = target.stats()["merge_drops"]
        target.merge(other)
        profile = target.get("a|q", 60, "exact")
        assert profile.runs == 3
        assert profile.latency.count == 3
        assert sum(profile.latency.bucket_counts) == 3
        assert profile.latency.total == pytest.approx(0.02 + 100.04)
        assert target.stats()["merge_drops"] == before + 1

    def test_service_profile_path_round_trip(self, tmp_path):
        """ServiceConfig.profile_path: load-on-start, save-on-close, and the
        saved file accumulates across service lifetimes."""
        path = tmp_path / "profiles.json"
        database = workload_database(num_vertices=8, rng=11)
        queries = mixed_query_workload(3, rng=11)

        def run(seed):
            with CountingService(
                database, ServiceConfig(profile_path=str(path))
            ) as service:
                service.count_batch(
                    [CountRequest(query=query) for query in queries], seed=seed
                )
                return service.profiles.stats()

        first = run(1)
        assert path.exists()
        second = run(2)  # distinct seed: no cross-process result cache anyway
        assert second["runs"] == 2 * first["runs"]
        assert ProfileStore.load(path).stats()["runs"] == second["runs"]


# ------------------------------------------- the zero-RNG telemetry contract
def _run_batch(database, queries, executor, tracer=None, fault_plan=None, retry=None):
    service = CountingService(
        database,
        ServiceConfig(executor=executor, tracer=tracer),
    )
    report = service.count_batch(
        [CountRequest(query=query) for query in queries],
        seed=2022,
        fault_plan=fault_plan,
        retry=retry,
    )
    return service, report


class TestTelemetryContract:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_traced_estimates_bit_identical_to_untraced(self, executor):
        database = workload_database(num_vertices=10, rng=3)
        queries = mixed_query_workload(6, rng=3)
        _, baseline = _run_batch(database, queries, executor)
        tracer = Tracer()
        _, traced = _run_batch(database, queries, executor, tracer=tracer)
        assert [r.estimate for r in traced.results] == [
            r.estimate for r in baseline.results
        ]
        assert [r.seed for r in traced.results] == [r.seed for r in baseline.results]
        assert tracer.find("service.count_batch")
        assert len(tracer.find("service.request")) == len(queries)
        assert tracer.find("scheme.count")

    def test_traced_estimates_bit_identical_under_faults(self):
        database = workload_database(num_vertices=10, rng=5)
        queries = mixed_query_workload(5, rng=5)
        plan = uniform_plan(seed=99, rate=1.0, sites=("executor.task",))
        retry = RetryPolicy(max_attempts=3)
        _, baseline = _run_batch(
            database, queries, "process", fault_plan=plan, retry=retry
        )
        tracer = Tracer()
        _, traced = _run_batch(
            database, queries, "process", tracer=tracer, fault_plan=plan, retry=retry
        )
        assert baseline.retries > 0
        assert traced.retries == baseline.retries
        assert [r.estimate for r in traced.results] == [
            r.estimate for r in baseline.results
        ]
        # The retry showed up in the span tree as task attempts > 1.
        attempts = [
            task_span.attrs.get("attempts")
            for task_span in tracer.find("executor.task")
        ]
        assert attempts and all(count >= 1 for count in attempts)
        assert any(count > 1 for count in attempts)

    def test_span_tree_records_plan_cache_and_execution(self, database):
        tracer = Tracer()
        service = CountingService(
            database, ServiceConfig(executor="serial", tracer=tracer)
        )
        queries = [parse_query(CQ), parse_query(DCQ), parse_query(ECQ)]
        service.count_batch([CountRequest(query=query) for query in queries], seed=1)
        service.count_batch([CountRequest(query=query) for query in queries], seed=1)
        assert len(tracer.find("service.count_batch")) == 2
        assert len(tracer.find("service.plan")) == 6
        lookups = tracer.find("cache.lookup")
        outcomes = {lookup.attrs.get("outcome") for lookup in lookups}
        assert outcomes == {"hit", "miss"}  # second batch served from cache
        for task_span in tracer.find("executor.task"):
            assert task_span.find("scheme.count")

    def test_worker_spans_ship_home_from_the_process_pool(self):
        database = workload_database(num_vertices=10, rng=7)
        queries = mixed_query_workload(4, rng=7)
        tracer = Tracer()
        _run_batch(database, queries, "process", tracer=tracer)
        for request_span in tracer.find("service.request"):
            if request_span.attrs.get("cache") == "miss":
                assert request_span.find("executor.task")


# ------------------------------------------------- service metrics + explain
class TestServiceMetrics:
    def test_stats_is_nested_by_subsystem(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        service.submit(parse_query(CQ), seed=1)
        service.submit(parse_query(CQ), seed=1)  # result-cache hit
        stats = service.stats()
        assert set(stats) == {"caches", "executor", "schemes", "stream", "profiles"}
        assert stats["caches"]["result"]["hits"] == 1
        assert stats["caches"]["result"]["misses"] == 1
        # Only the first submit executed tasks; the second was a pure
        # result-cache hit, which records no executor batch.
        assert stats["executor"]["batches"] == {"serial": 1}
        assert stats["schemes"]["exact"]["count"] == 1
        assert stats["stream"]["subscriptions"] == 0
        assert stats["profiles"]["entries"] >= 1
        assert stats["profiles"]["schemes"] == ["exact"]

    def test_requests_counter_tracks_hit_and_miss(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        service.submit(parse_query(CQ), seed=1)
        service.submit(parse_query(CQ), seed=1)
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["service.requests"] == {
            "cache=hit": 1,
            "cache=miss": 1,
        }

    def test_explain_gains_an_observed_section_after_runs(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        first = service.submit(parse_query(CQ), seed=1)
        assert "observed:" not in first.plan.explain()  # nothing recorded yet
        service.result_cache.clear()
        second = service.submit(parse_query(CQ), seed=1)
        explain = second.plan.explain()
        assert "observed:" in explain
        assert "* exact: runs=1" in explain
        assert second.plan.to_dict()["observed"]["schemes"]["exact"]["runs"] == 1

    def test_metrics_render_covers_core_series(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        service.submit(parse_query(CQ), seed=1)
        text = service.metrics.render_prometheus()
        for series in (
            "repro_service_requests",
            "repro_executor_batches",
            "repro_scheme_latency_seconds",
            "repro_cache_result_hit_rate",
            "repro_breaker_tracked_rungs",
        ):
            assert series in text


# ------------------------------------------------------------------ CLI
class TestObsCli:
    def test_batch_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.txt"
        code = main(
            [
                "batch", "--workload", "4", "--seed", "9", "--executor", "serial",
                "--trace", str(trace_path), "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        roots = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert [root["name"] for root in roots] == ["service.count_batch"]
        names = {child["name"] for child in roots[0]["children"]}
        assert "service.request" in names
        metrics_text = metrics_path.read_text()
        assert "repro_service_requests" in metrics_text
        assert 'repro_executor_batches{mode="serial"} 1' in metrics_text

    def test_stream_json_includes_refresh_seconds(self, capsys):
        from repro.cli import main

        code = main(
            ["stream", "--events", "30", "--queries", "2", "--seed", "5", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "refresh_seconds" in payload
        assert payload["refresh_seconds"] >= 0.0
        assert set(payload["cache"]) == {
            "caches", "executor", "schemes", "stream", "profiles"
        }
