"""Tests for the query model, the parser, the rewritings and the builders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries import (
    Atom,
    ConjunctiveQuery,
    Disequality,
    NegatedAtom,
    QueryClass,
    add_constant_constraint,
    clique_query,
    grid_query,
    hamiltonian_path_query,
    parse_query,
    path_query,
    star_query,
)
from repro.queries.builders import (
    common_neighbour_query,
    cycle_query,
    friends_query,
    high_arity_acyclic_query,
)
from repro.queries.parser import QueryParseError, format_query
from repro.relational.structure import Database


class TestAtoms:
    def test_atom_basics(self):
        atom = Atom("E", ("x", "y"))
        assert atom.arity == 2
        assert atom.variables == {"x", "y"}
        assert str(atom) == "E(x, y)"

    def test_atom_rename(self):
        atom = Atom("E", ("x", "y"))
        assert atom.rename({"x": "z"}).args == ("z", "y")

    def test_negated_atom(self):
        atom = NegatedAtom("F", ("x",))
        assert str(atom) == "!F(x)"
        assert atom.positive() == Atom("F", ("x",))

    def test_disequality_same_variable_rejected(self):
        with pytest.raises(ValueError):
            Disequality("x", "x")

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueError):
            Atom("E", ())


class TestConjunctiveQuery:
    def test_free_and_existential_variables(self):
        query = parse_query("Ans(x) :- E(x, y), E(y, z)")
        assert query.free_variables == ("x",)
        assert query.existential_variables == {"y", "z"}
        assert query.variables == {"x", "y", "z"}

    def test_query_class(self):
        assert parse_query("Ans(x) :- E(x, y)").query_class() is QueryClass.CQ
        assert parse_query("Ans(x) :- E(x, y), x != y").query_class() is QueryClass.DCQ
        assert parse_query("Ans(x) :- E(x, y), !F(x, y)").query_class() is QueryClass.ECQ

    def test_size_parameter(self):
        """||phi|| = |vars| + sum of atom arities (atoms incl. disequalities)."""
        query = parse_query("Ans(x) :- E(x, y), E(x, z), y != z")
        assert query.size() == 3 + (2 + 2 + 2)

    def test_hypergraph_excludes_disequalities(self):
        query = parse_query("Ans(x, y) :- E(x, z), x != y, E(y, z)")
        hypergraph = query.hypergraph()
        assert frozenset({"x", "z"}) in hypergraph.edges
        assert frozenset({"x", "y"}) not in hypergraph.edges

    def test_hypergraph_includes_negated_atoms(self):
        query = parse_query("Ans(x, y) :- E(x, y), !F(x, y)")
        assert frozenset({"x", "y"}) in query.hypergraph().edges

    def test_delta(self):
        query = parse_query("Ans(x, y, z) :- E(x, y), E(y, z), x != y, x != z")
        assert query.delta() == {frozenset({"x", "y"}), frozenset({"x", "z"})}

    def test_unused_variable_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(free_variables=["x", "w"], atoms=[Atom("E", ("x", "y"))])

    def test_duplicate_free_variables_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(free_variables=["x", "x"], atoms=[Atom("E", ("x", "x"))])

    def test_conflicting_arities_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(
                free_variables=["x", "y"],
                atoms=[Atom("E", ("x", "y")), Atom("E", ("x", "x", "y"))],
            )

    def test_signature_and_arity(self):
        query = parse_query("Ans(x) :- R(x, y, z), !S(x)")
        assert query.arity() == 3
        assert set(query.signature().names()) == {"R", "S"}


class TestSemantics:
    def test_friends_example_from_introduction(self):
        """Example (1): people with at least two distinct friends."""
        database = Database(universe=["a", "b", "c", "d"])
        for pair in [("a", "b"), ("a", "c"), ("b", "c")]:
            database.add_fact("F", pair)
            database.add_fact("F", (pair[1], pair[0]))
        query = friends_query()
        answers = query.answers(database)
        assert answers == {("a",), ("b",), ("c",)}

    def test_answers_vs_solutions(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        solutions = list(query.solutions(triangle_database))
        answers = query.answers(triangle_database)
        assert len(solutions) == 6
        assert len(answers) == 3

    def test_negation_semantics(self):
        database = Database.from_relations({"E": [(1, 2)], "F": [(1, 2)]},
                                           universe=[1, 2])
        query = parse_query("Ans(x, y) :- E(x, y), !F(x, y)")
        assert query.answers(database) == set()
        query2 = parse_query("Ans(x, y) :- E(x, y), !F(y, x)")
        assert query2.answers(database) == {(1, 2)}

    def test_disequality_semantics(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        assert len(query.answers(triangle_database)) == 6

    def test_is_answer(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y), E(x, z), y != z")
        assert query.is_answer((1,), triangle_database)
        assert not query.is_answer((99,), triangle_database)

    def test_missing_relation_raises(self):
        database = Database.from_relations({"E": [(1, 2)]})
        query = parse_query("Ans(x) :- R(x, y)")
        with pytest.raises(ValueError):
            query.answers(database)


class TestParser:
    def test_round_trip(self):
        text = "Ans(x, y) :- E(x, z), E(z, y), x != y, !F(x, y)"
        query = parse_query(text)
        again = parse_query(format_query(query))
        assert query == again

    def test_not_keyword(self):
        query = parse_query("Ans(x) :- E(x, y), not F(x, y)")
        assert len(query.negated_atoms) == 1

    def test_equality_elimination(self):
        query = parse_query("Ans(x) :- E(x, y), y = z, E(z, w)")
        assert "z" not in query.variables or "y" not in query.variables
        assert len(query.atoms) == 2

    def test_equality_keeping_free_variable(self):
        query = parse_query("Ans(x) :- E(x, y), x = z, E(z, w)")
        assert query.free_variables == ("x",)
        assert all("z" not in atom.args for atom in query.atoms)

    def test_equality_merging_free_variables_rejected(self):
        with pytest.raises(ValueError):
            parse_query("Ans(x, y) :- E(x, y), x = y")

    def test_contradicting_equality_and_disequality_rejected(self):
        with pytest.raises(ValueError):
            parse_query("Ans(x) :- E(x, y), x = y, x != y")

    def test_boolean_query(self):
        query = parse_query("Ans() :- E(x, y)")
        assert query.num_free() == 0
        assert query.num_existential() == 2

    def test_parse_errors(self):
        with pytest.raises(QueryParseError):
            parse_query("E(x, y)")
        with pytest.raises(QueryParseError):
            parse_query("Ans(x) :- E(x, ")
        with pytest.raises(QueryParseError):
            parse_query("Ans(x) :- 1E(x)")
        with pytest.raises(QueryParseError):
            parse_query("Ans(x, x) :- E(x, x)")


class TestRewriting:
    def test_add_constant_constraint(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        pinned_query, pinned_database = add_constant_constraint(
            query, triangle_database, "x", 1
        )
        assert pinned_query.count_answers_bruteforce(pinned_database) == 1

    def test_add_constant_unknown_variable(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        with pytest.raises(ValueError):
            add_constant_constraint(query, triangle_database, "w", 1)

    def test_add_constant_unknown_value(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        with pytest.raises(ValueError):
            add_constant_constraint(query, triangle_database, "x", 99)


class TestBuilders:
    def test_path_query(self):
        query = path_query(3, free_endpoints_only=True)
        assert query.num_free() == 2
        assert query.num_existential() == 2
        assert query.hypergraph().num_edges() == 3

    def test_star_query_footnote_4(self):
        query = star_query(3)
        assert query.free_variables == ("x1", "x2", "x3")
        assert query.existential_variables == {"y"}
        assert query.query_class() is QueryClass.CQ

    def test_star_query_with_disequalities(self):
        query = star_query(3, with_disequalities=True)
        assert len(query.disequalities) == 3
        assert query.query_class() is QueryClass.DCQ

    def test_common_neighbour_alias(self):
        assert common_neighbour_query(3).query_class() is QueryClass.DCQ

    def test_clique_query_treewidth(self):
        from repro.decomposition import exact_treewidth

        query = clique_query(4)
        assert exact_treewidth(query.hypergraph()) == 3

    def test_cycle_query(self):
        query = cycle_query(5)
        assert query.hypergraph().num_edges() == 5

    def test_grid_query(self):
        query = grid_query(2, 3, num_free=2)
        assert query.num_free() == 2
        assert len(query.atoms) == 7

    def test_hamiltonian_path_query(self):
        query = hamiltonian_path_query(4)
        assert query.num_free() == 4
        assert len(query.disequalities) == 6
        from repro.decomposition import exact_treewidth

        assert exact_treewidth(query.hypergraph()) == 1

    def test_high_arity_acyclic_query(self):
        query = high_arity_acyclic_query(num_blocks=3, block_arity=4, shared=2)
        assert query.arity() == 4
        from repro.decomposition import fractional_hypertreewidth

        fhw, _ = fractional_hypertreewidth(query.hypergraph())
        assert fhw == pytest.approx(1.0)

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            path_query(0)
        with pytest.raises(ValueError):
            star_query(0)
        with pytest.raises(ValueError):
            clique_query(1)
        with pytest.raises(ValueError):
            hamiltonian_path_query(1)


@settings(max_examples=25, deadline=None)
@given(length=st.integers(min_value=1, max_value=5), seed=st.integers(min_value=0, max_value=100))
def test_path_query_answer_count_on_random_graphs(length, seed):
    """The quantifier-free path query counts walks; verify against a direct
    walk count on small random graphs."""
    from repro.workloads import database_from_graph, erdos_renyi_graph
    import networkx as nx
    import numpy as np

    graph = erdos_renyi_graph(6, 0.4, rng=seed)
    database = database_from_graph(graph)
    query = path_query(length)  # all variables free
    expected_walks = 0
    adjacency = nx.to_numpy_array(graph, nodelist=sorted(graph.nodes()))
    # number of walks of given length = sum of A^length entries
    power = np.linalg.matrix_power(adjacency, length)
    expected_walks = int(power.sum())
    assert query.count_answers_bruteforce(database) == expected_walks
