"""Tests for the associated structures A(phi), B(phi, D), Â(phi), B̂(...)
(Definitions 18, 20, 26, 28) and their size bounds (Observations 19, 21, 27)."""

from __future__ import annotations

import pytest

from repro.core.associated_structures import (
    BLUE,
    RED,
    build_A,
    build_A_hat,
    build_B,
    build_B_hat,
    colour_relation_names,
    negated_symbol_name,
    size_bound_A,
    size_bound_A_hat,
    variable_order,
    variable_relation_name,
)
from repro.queries import parse_query
from repro.relational import Database, count_homomorphisms, exists_homomorphism
from repro.relational.structure import Structure


@pytest.fixture
def ecq():
    return parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y, !F(x, y)")


@pytest.fixture
def simple_db():
    return Database.from_relations(
        {"E": [(1, 2), (2, 3), (2, 1), (3, 2)], "F": [(1, 3)]}, universe=[1, 2, 3]
    )


class TestVariableOrder:
    def test_free_variables_first(self, ecq):
        order = variable_order(ecq)
        assert order[:2] == ["x", "y"]
        assert set(order[2:]) == {"z"}


class TestAPhi:
    def test_universe_is_vars(self, ecq):
        structure = build_A(ecq)
        assert structure.universe == ecq.variables

    def test_positive_and_negated_relations(self, ecq):
        structure = build_A(ecq)
        assert structure.has_fact("E", ("x", "z"))
        assert structure.has_fact("E", ("z", "y"))
        assert structure.has_fact(negated_symbol_name("F"), ("x", "y"))

    def test_size_bound_observation_19(self, ecq):
        structure = build_A(ecq)
        assert structure.size() <= size_bound_A(ecq)

    def test_hypergraph_matches_query_hypergraph(self, ecq):
        """Footnote 7: H(phi) and H(A(phi)) coincide."""
        assert build_A(ecq).hypergraph().edges == ecq.hypergraph().edges


class TestBPhiD:
    def test_positive_relations_copied(self, ecq, simple_db):
        structure = build_B(ecq, simple_db)
        assert structure.relation("E") == simple_db.relation("E")

    def test_negated_relation_is_complement(self, ecq, simple_db):
        structure = build_B(ecq, simple_db)
        complement = structure.relation(negated_symbol_name("F"))
        assert (1, 3) not in complement
        assert (3, 1) in complement
        assert len(complement) == 9 - 1

    def test_universe_is_database_universe(self, ecq, simple_db):
        assert build_B(ecq, simple_db).universe == simple_db.universe

    def test_missing_relation_raises(self, ecq):
        database = Database.from_relations({"E": [(1, 2)]})
        query = parse_query("Ans(x) :- R(x, y)")
        with pytest.raises(ValueError):
            build_B(query, database)

    def test_homomorphisms_count_solutions_without_disequalities(self, simple_db):
        """For an ECQ without disequalities, |Hom(A(phi) -> B(phi, D))| equals
        |Sol(phi, D)| (equation (2) with ∆(phi) = ∅)."""
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), !F(x, y)")
        from repro.core.exact import count_solutions_exact

        a_structure = build_A(query)
        b_structure = build_B(query, simple_db)
        assert count_homomorphisms(a_structure, b_structure) == count_solutions_exact(
            query, simple_db
        )


class TestAHat:
    def test_unary_variable_relations(self, ecq):
        structure = build_A_hat(ecq)
        for variable in ecq.variables:
            assert structure.has_fact(variable_relation_name(variable), (variable,))

    def test_colour_relations_for_disequalities(self, ecq):
        structure = build_A_hat(ecq)
        (pair,) = ecq.delta()
        red_name, blue_name = colour_relation_names(ecq, pair)
        assert structure.relation(red_name) != structure.relation(blue_name)
        assert len(structure.relation(red_name)) == 1
        assert len(structure.relation(blue_name)) == 1

    def test_size_bound_observation_27(self, ecq):
        structure = build_A_hat(ecq)
        assert structure.size() <= size_bound_A_hat(ecq)

    def test_a_hat_extends_a(self, ecq):
        base = build_A(ecq)
        hat = build_A_hat(ecq)
        for symbol in base.signature:
            assert hat.relation(symbol.name) == base.relation(symbol.name)


class TestBHat:
    def _full_subsets(self, query, database):
        return [
            {(value, index) for value in database.universe}
            for index in range(query.num_free())
        ]

    def _all_red_blue_colouring(self, query, database, left_value):
        colouring = {}
        for pair in query.delta():
            colouring[pair] = {
                value: (RED if value == left_value else BLUE) for value in database.universe
            }
        return colouring

    def test_universe_tags(self, ecq, simple_db):
        subsets = self._full_subsets(ecq, simple_db)
        colouring = self._all_red_blue_colouring(ecq, simple_db, left_value=1)
        structure = build_B_hat(ecq, simple_db, subsets, colouring)
        tags = {tag for _, tag in structure.universe}
        assert tags == {0, 1, 2}

    def test_requires_colouring_for_disequalities(self, ecq, simple_db):
        subsets = self._full_subsets(ecq, simple_db)
        with pytest.raises(ValueError):
            build_B_hat(ecq, simple_db, subsets, colouring=None)

    def test_lemma_30_forward_direction(self, simple_db):
        """If the restricted answer hypergraph has an edge, some colouring
        admits a homomorphism Â -> B̂ (checked by trying a witnessing
        colouring on a query with one disequality)."""
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        # (1, 3) is an answer with witness z = 2, and 1 != 3.
        subsets = [
            {(1, 0)},
            {(3, 1)},
        ]
        (pair,) = query.delta()
        colouring = {pair: {1: RED, 2: BLUE, 3: BLUE}}
        a_hat = build_A_hat(query)
        b_hat = build_B_hat(query, simple_db, subsets, colouring)
        assert exists_homomorphism(a_hat, b_hat)

    def test_lemma_30_no_edge_means_no_homomorphism(self, simple_db):
        """If the restriction has no answer, no colouring admits a
        homomorphism (one-sided correctness of the reduction)."""
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        # (1, 1) is excluded by the disequality; (1, y=1) restriction:
        subsets = [{(1, 0)}, {(1, 1)}]
        (pair,) = query.delta()
        a_hat = build_A_hat(query)
        for left_value in simple_db.universe:
            colouring = {pair: {v: (RED if v == left_value else BLUE) for v in simple_db.universe}}
            b_hat = build_B_hat(query, simple_db, subsets, colouring)
            assert not exists_homomorphism(a_hat, b_hat)

    def test_subset_tag_validation(self, ecq, simple_db):
        subsets = self._full_subsets(ecq, simple_db)
        subsets[0] = {(1, 1)}  # wrong tag
        colouring = self._all_red_blue_colouring(ecq, simple_db, left_value=1)
        with pytest.raises(ValueError):
            build_B_hat(ecq, simple_db, subsets, colouring)
