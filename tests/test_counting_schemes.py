"""Integration tests for the paper's approximation schemes:

* Theorem 5  — FPTRAS for bounded-treewidth, bounded-arity ECQs,
* Theorem 13 — FPTRAS for bounded-adaptive-width DCQs,
* Theorem 16 — FPRAS for bounded-fhw CQs,
* the exact baselines they are compared against.

All tests compare against exact counts on seeded instances with tolerance
bands wider than the requested epsilon (the schemes are randomised)."""

from __future__ import annotations

import pytest

from repro.core import (
    approx_count_answers,
    count_answers_exact,
    count_solutions_exact,
    exact_count_answers_via_oracle,
    fpras_count_cq,
    fptras_count_dcq,
    fptras_count_ecq,
)
from repro.queries import parse_query
from repro.queries.builders import (
    friends_query,
    high_arity_acyclic_query,
    path_query,
    star_query,
)
from repro.relational import Database, RelationSymbol, Signature
from repro.workloads import (
    database_from_graph,
    erdos_renyi_graph,
    random_high_arity_database,
)

EPS = 0.3
DELTA = 0.2


def assert_close(estimate: float, truth: int, slack: float = 0.45) -> None:
    """Tolerance band for randomised estimates: wider than epsilon to keep the
    test suite deterministic-failure-free, but tight enough to catch real
    bugs (an off-by-factor answer fails immediately)."""
    if truth == 0:
        assert estimate <= 0.5
    else:
        assert abs(estimate - truth) <= max(slack * truth, 1.0)


class TestExactBaselines:
    def test_backtracking_matches_bruteforce(self, small_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        assert count_answers_exact(query, small_database) == count_answers_exact(
            query, small_database, method="bruteforce"
        )

    def test_solutions_at_least_answers(self, small_database):
        query = parse_query("Ans(x) :- E(x, y), E(y, z)")
        assert count_solutions_exact(query, small_database) >= count_answers_exact(
            query, small_database
        )

    def test_empty_database(self):
        database = Database(signature=Signature([RelationSymbol("E", 2)]), universe=[])
        query = parse_query("Ans(x) :- E(x, y)")
        assert count_answers_exact(query, database) == 0

    def test_unknown_method(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        with pytest.raises(ValueError):
            count_answers_exact(query, triangle_database, method="nope")


class TestTheorem5FPTRAS:
    def test_friends_query(self, friends_db):
        query = friends_query()
        truth = count_answers_exact(query, friends_db)
        estimate = fptras_count_ecq(query, friends_db, EPS, DELTA, rng=0)
        assert_close(estimate, truth)

    def test_ecq_with_negation(self, small_database):
        database = small_database.copy()
        # Add a sparse second relation to negate.
        universe = sorted(database.universe)
        for i in range(0, len(universe) - 1, 3):
            database.add_fact("F", (universe[i], universe[i + 1]))
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y, !F(x, y)")
        truth = count_answers_exact(query, database)
        estimate = fptras_count_ecq(query, database, EPS, DELTA, rng=1)
        assert_close(estimate, truth)

    def test_colour_coding_mode_small_instance(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y), E(x, z), y != z")
        truth = count_answers_exact(query, triangle_database)
        estimate = fptras_count_ecq(
            query, triangle_database, EPS, DELTA, rng=2, oracle_mode="colour_coding"
        )
        assert_close(estimate, truth)

    def test_direct_mode_matches(self, small_database):
        query = star_query(2, with_disequalities=True)
        truth = count_answers_exact(query, small_database)
        estimate = fptras_count_ecq(
            query, small_database, EPS, DELTA, rng=3, oracle_mode="direct"
        )
        assert_close(estimate, truth)

    def test_zero_answers(self):
        database = Database.from_relations({"E": [(1, 1)]}, universe=[1])
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        assert fptras_count_ecq(query, database, EPS, DELTA, rng=4) == 0.0

    def test_boolean_query(self, triangle_database):
        query = parse_query("Ans() :- E(x, y), x != y")
        estimate = fptras_count_ecq(query, triangle_database, EPS, DELTA, rng=5)
        assert estimate == 1.0

    def test_treewidth_bound_enforced(self, triangle_database):
        from repro.queries.builders import clique_query

        query = clique_query(4)
        with pytest.raises(ValueError):
            fptras_count_ecq(query, triangle_database, EPS, DELTA, rng=0, treewidth_bound=1)

    def test_result_record(self, friends_db):
        result = fptras_count_ecq(
            friends_query(), friends_db, EPS, DELTA, rng=6, return_result=True
        )
        assert result.treewidth == 1
        assert result.arity == 2
        assert result.statistics.edgefree_calls > 0
        assert isinstance(result.rounded(), int)

    def test_oracle_based_exact_counter(self, friends_db):
        query = friends_query()
        assert exact_count_answers_via_oracle(query, friends_db) == count_answers_exact(
            query, friends_db
        )


class TestTheorem13FPTRAS:
    def test_rejects_negations(self, small_database):
        query = parse_query("Ans(x) :- E(x, y), !E(y, x)")
        with pytest.raises(ValueError):
            fptras_count_dcq(query, small_database, EPS, DELTA)

    def test_dcq_star(self, small_database):
        query = star_query(2, with_disequalities=True)
        truth = count_answers_exact(query, small_database)
        estimate = fptras_count_dcq(query, small_database, EPS, DELTA, rng=7)
        assert_close(estimate, truth)

    def test_high_arity_acyclic_dcq(self):
        query = high_arity_acyclic_query(
            num_blocks=2, block_arity=3, shared=1, num_free=2, with_disequalities=True
        )
        database = random_high_arity_database(
            universe_size=6, relation_names=["R0", "R1"], arity=3,
            facts_per_relation=30, rng=8,
        )
        truth = count_answers_exact(query, database)
        estimate = fptras_count_dcq(query, database, EPS, DELTA, rng=9)
        assert_close(estimate, truth)

    def test_result_record_reports_adaptive_width_bound(self, small_database):
        query = star_query(2, with_disequalities=True)
        result = fptras_count_dcq(
            query, small_database, EPS, DELTA, rng=10, return_result=True
        )
        assert result.adaptive_width_upper_bound == pytest.approx(1.0)


class TestTheorem16FPRAS:
    def test_rejects_dcq(self, small_database):
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        with pytest.raises(ValueError):
            fpras_count_cq(query, small_database, EPS, DELTA)

    def test_two_hop_query(self, small_database, two_hop_query):
        truth = count_answers_exact(two_hop_query, small_database)
        estimate = fpras_count_cq(two_hop_query, small_database, EPS, DELTA, rng=11)
        assert_close(estimate, truth)

    def test_star_query_with_quantified_centre(self, small_database):
        query = star_query(3)
        truth = count_answers_exact(query, small_database)
        estimate = fpras_count_cq(query, small_database, EPS, DELTA, rng=12)
        assert_close(estimate, truth)

    def test_quantifier_free_query_is_exact_shaped(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        truth = count_answers_exact(query, triangle_database)
        estimate = fpras_count_cq(query, triangle_database, EPS, DELTA, rng=13)
        assert_close(estimate, truth, slack=0.2)

    def test_zero_answers(self):
        database = Database.from_relations({"E": [(1, 2)]}, universe=[1, 2, 3])
        query = parse_query("Ans(x) :- E(x, y), E(y, x)")
        assert fpras_count_cq(query, database, EPS, DELTA, rng=14) == 0.0

    def test_high_arity_acyclic_cq(self):
        query = high_arity_acyclic_query(num_blocks=2, block_arity=3, shared=1, num_free=2)
        database = random_high_arity_database(
            universe_size=6, relation_names=["R0", "R1"], arity=3,
            facts_per_relation=25, rng=15,
        )
        truth = count_answers_exact(query, database)
        estimate = fpras_count_cq(query, database, EPS, DELTA, rng=16)
        assert_close(estimate, truth)

    def test_result_record(self, small_database, two_hop_query):
        result = fpras_count_cq(
            two_hop_query, small_database, EPS, DELTA, rng=17, return_result=True
        )
        assert result.fractional_hypertreewidth == pytest.approx(1.0)
        assert result.num_states > 0
        assert result.tree_size > 0


class TestDispatcher:
    def test_auto_routes_cq_to_fpras(self, triangle_database, two_hop_query):
        value = approx_count_answers(two_hop_query, triangle_database, 0.2, 0.1, seed=18)
        assert value == count_answers_exact(two_hop_query, triangle_database)

    def test_auto_routes_ecq_to_fptras(self, friends_db):
        query = friends_query()
        value = approx_count_answers(query, friends_db, 0.3, 0.2, seed=19)
        assert value == count_answers_exact(query, friends_db)

    def test_exact_method(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        assert approx_count_answers(query, triangle_database, method="exact") == 3

    def test_unknown_method(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        with pytest.raises(ValueError):
            approx_count_answers(query, triangle_database, method="nope")


class TestAccuracySweep:
    """A light-weight version of the accuracy bench: the estimate tracks the
    exact count across several seeded instances."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fpras_accuracy_across_graphs(self, seed):
        graph = erdos_renyi_graph(10, 0.3, rng=seed)
        database = database_from_graph(graph)
        query = path_query(2, free_endpoints_only=True)
        truth = count_answers_exact(query, database)
        estimate = fpras_count_cq(query, database, 0.25, 0.1, rng=seed + 100)
        assert_close(estimate, truth)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_fptras_accuracy_across_graphs(self, seed):
        graph = erdos_renyi_graph(9, 0.3, rng=seed)
        database = database_from_graph(graph)
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        truth = count_answers_exact(query, database)
        estimate = fptras_count_ecq(query, database, 0.3, 0.15, rng=seed + 50)
        assert_close(estimate, truth)
