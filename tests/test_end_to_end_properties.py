"""Property-based end-to-end tests: on randomly generated small instances the
approximation schemes must stay consistent with the exact semantics.

These tests keep the instances tiny (so the exact baseline is trustworthy and
the randomised schemes' failure probability is negligible at the chosen
tolerances) but randomise the *structure*: query shape, free/existential
split, database contents.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    count_answers_exact,
    count_solutions_exact,
    exact_count_answers_via_oracle,
    fpras_count_cq,
)
from repro.core.exact import enumerate_answers_exact
from repro.queries import ConjunctiveQuery
from repro.queries.builders import path_query
from repro.workloads import database_from_graph, erdos_renyi_graph, random_tree_query


SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SETTINGS
@given(
    num_variables=st.integers(min_value=2, max_value=4),
    num_free=st.integers(min_value=1, max_value=3),
    graph_seed=st.integers(min_value=0, max_value=50),
    query_seed=st.integers(min_value=0, max_value=50),
)
def test_answers_are_projections_of_solutions(num_variables, num_free, graph_seed, query_seed):
    """|Ans| <= |Sol| and every answer extends to a solution (Definitions 1/2)."""
    query = random_tree_query(num_variables, num_free=min(num_free, num_variables), rng=query_seed)
    database = database_from_graph(erdos_renyi_graph(5, 0.5, rng=graph_seed))
    answers = enumerate_answers_exact(query, database)
    solutions = count_solutions_exact(query, database)
    assert len(answers) <= max(solutions, 0) or solutions == 0 and not answers
    for answer in answers:
        assert query.is_answer(answer, database)


@SETTINGS
@given(
    num_variables=st.integers(min_value=2, max_value=4),
    graph_seed=st.integers(min_value=0, max_value=50),
    query_seed=st.integers(min_value=0, max_value=50),
)
def test_oracle_exact_counter_matches_semantics(num_variables, graph_seed, query_seed):
    """The EdgeFree-oracle-based exact counter (splitting over the answer
    hypergraph) agrees with the reference semantics on random DCQs."""
    query = random_tree_query(
        num_variables, num_free=max(1, num_variables - 1), num_disequalities=1, rng=query_seed
    )
    database = database_from_graph(erdos_renyi_graph(4, 0.6, rng=graph_seed))
    assert exact_count_answers_via_oracle(query, database) == count_answers_exact(
        query, database
    )


@SETTINGS
@given(graph_seed=st.integers(min_value=0, max_value=40))
def test_fpras_never_hallucinate_answers_on_empty_instances(graph_seed):
    """If the exact count is zero the FPRAS must return (essentially) zero —
    the schemes have no additive error."""
    database = database_from_graph(erdos_renyi_graph(4, 0.15, rng=graph_seed))
    query = path_query(3, free_endpoints_only=True)
    truth = count_answers_exact(query, database)
    if truth != 0:
        return
    assert fpras_count_cq(query, database, 0.4, 0.2, rng=graph_seed) <= 0.5


@SETTINGS
@given(
    graph_seed=st.integers(min_value=0, max_value=40),
    query_seed=st.integers(min_value=0, max_value=40),
)
def test_fpras_tracks_exact_on_random_tree_cqs(graph_seed, query_seed):
    """FPRAS estimate within a generous band of the exact count on random
    tree-shaped CQs with a random free/existential split."""
    query = random_tree_query(4, num_free=2, rng=query_seed)
    database = database_from_graph(erdos_renyi_graph(6, 0.45, rng=graph_seed))
    truth = count_answers_exact(query, database)
    estimate = fpras_count_cq(query, database, 0.3, 0.1, rng=graph_seed + 1000 + query_seed)
    if truth == 0:
        assert estimate <= 0.5
    else:
        assert abs(estimate - truth) <= max(0.5 * truth, 1.5)
