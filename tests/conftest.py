"""Shared pytest fixtures: small graphs, databases and queries reused across
the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.queries.builders import friends_query, path_query, star_query
from repro.relational.structure import Database
from repro.workloads import database_from_graph, erdos_renyi_graph


@pytest.fixture
def triangle_database() -> Database:
    """The (symmetric) triangle graph on {1, 2, 3}."""
    return Database.from_graph_edges([(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def small_graph() -> nx.Graph:
    """A fixed 8-vertex Erdős–Rényi graph."""
    return erdos_renyi_graph(8, 0.35, rng=7)


@pytest.fixture
def small_database(small_graph) -> Database:
    return database_from_graph(small_graph)


@pytest.fixture
def medium_graph() -> nx.Graph:
    """A fixed 15-vertex Erdős–Rényi graph."""
    return erdos_renyi_graph(15, 0.25, rng=11)


@pytest.fixture
def medium_database(medium_graph) -> Database:
    return database_from_graph(medium_graph)


@pytest.fixture
def friends_db() -> Database:
    """A friendship database for the introduction's example query."""
    edges = [("alice", "bob"), ("alice", "carol"), ("bob", "carol"),
             ("dave", "alice"), ("erin", "dave")]
    database = Database(universe=["alice", "bob", "carol", "dave", "erin", "frank"])
    for a, b in edges:
        database.add_fact("F", (a, b))
        database.add_fact("F", (b, a))
    return database


@pytest.fixture
def two_hop_query():
    """A CQ with an existential middle variable: Ans(x, y) :- E(x,z), E(z,y)."""
    return path_query(2, free_endpoints_only=True)


@pytest.fixture
def friends_query_fixture():
    return friends_query()


@pytest.fixture
def star3_dcq():
    """The footnote-4 star query with 3 pairwise-distinct leaves."""
    return star_query(3, with_disequalities=True)
