"""Tests for database I/O and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import ProfileStore
from repro.relational import Database
from repro.relational.io import (
    database_from_dict,
    database_to_dict,
    load_database_json,
    load_edge_list,
    load_relation_csv,
    save_database_json,
)


@pytest.fixture
def sample_database():
    return Database.from_relations(
        {"E": [(1, 2), (2, 3), (2, 1), (3, 2)], "P": [(1,)]}, universe=[1, 2, 3, 4]
    )


class TestDatabaseIO:
    def test_dict_round_trip(self, sample_database):
        data = database_to_dict(sample_database)
        restored = database_from_dict(data)
        assert restored.relations() == sample_database.relations()
        assert restored.universe == sample_database.universe

    def test_json_round_trip(self, sample_database, tmp_path):
        path = tmp_path / "db.json"
        save_database_json(sample_database, path)
        restored = load_database_json(path)
        assert restored.relation("E") == sample_database.relation("E")
        assert restored.relation("P") == sample_database.relation("P")

    def test_empty_relation_needs_arity(self):
        with pytest.raises(ValueError):
            database_from_dict({"relations": {"E": []}})
        database = database_from_dict({"relations": {"E": []}, "arities": {"E": 2}})
        assert database.relation("E") == frozenset()

    def test_round_trip_preserves_empty_relations_and_signature(self, tmp_path):
        """Declared-but-unpopulated symbols (including relations a stream of
        deletions emptied) must survive save/load, so a reloaded database
        re-subscribes cleanly against queries mentioning them."""
        from repro.relational import RelationSymbol

        database = Database.from_relations({"E": [(1, 2), (2, 1)]})
        database.add_relation(RelationSymbol("F", 2))  # declared, never populated
        database.add_fact("G", (1, 2))
        database.remove_fact("G", (1, 2))  # emptied by a deletion
        path = tmp_path / "stream_db.json"
        save_database_json(database, path)
        restored = load_database_json(path)
        assert restored.signature == database.signature
        assert restored.relations() == database.relations()
        assert restored.universe == database.universe

        # The reloaded database serves subscriptions over the empty relation.
        from repro.queries import parse_query
        from repro.service import CountingService, ServiceConfig

        service = CountingService(restored, ServiceConfig(executor="serial"))
        subscription = service.subscribe(
            parse_query("Ans(x) :- E(x, y), !F(x, y)")
        )
        assert subscription.read().fresh
        restored.add_fact("F", (1, 2))
        live = subscription.read()
        assert live.refreshed
        assert live.estimate == parse_query(
            "Ans(x) :- E(x, y), !F(x, y)"
        ).count_answers_bruteforce(restored)
        subscription.close()

    def test_load_edge_list(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n1 2\n2 3\n\n")
        database = load_edge_list(path)
        assert database.has_fact("E", ("1", "2"))
        assert database.has_fact("E", ("2", "1"))  # symmetric by default
        assert len(database.relation("E")) == 4

    def test_load_edge_list_bad_line(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_load_relation_csv(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b,c\nd,e,f\n")
        database = load_relation_csv(path)
        assert database.has_fact("R", ("a", "b", "c"))
        assert database.signature["R"].arity == 3


class TestCLI:
    def _write_db(self, tmp_path):
        database = Database.from_relations(
            {"E": [(1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)]}
        )
        path = tmp_path / "db.json"
        save_database_json(database, path)
        return path

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["classify", "--query", "Ans(x) :- E(x, y)"])
        assert args.command == "classify"

    def test_count_command(self, tmp_path, capsys):
        path = self._write_db(tmp_path)
        code = main(
            [
                "count",
                "--query",
                "Ans(x) :- E(x, y), E(x, z), y != z",
                "--database",
                str(path),
                "--seed",
                "0",
                "--exact",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "estimate:" in output and "exact:" in output
        # The triangle has 3 vertices with two distinct neighbours each.
        assert "3" in output

    def test_count_exact_method(self, tmp_path, capsys):
        path = self._write_db(tmp_path)
        code = main(
            ["count", "--query", "Ans(x, y) :- E(x, y)", "--database", str(path),
             "--method", "exact"]
        )
        assert code == 0
        assert "estimate:    6" in capsys.readouterr().out

    def test_stream_command(self, capsys):
        code = main(
            ["stream", "--events", "40", "--queries", "3", "--seed", "5",
             "--verify"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "replayed 40 events" in output
        assert "verified" in output

    def test_stream_command_json(self, capsys):
        code = main(
            ["stream", "--events", "30", "--queries", "2", "--seed", "5",
             "--refresh", "debounced", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_events"] == 30
        assert payload["refresh_policy"] == "debounced"
        assert (
            payload["refreshes"] + payload["fresh_serves"] + payload["stale_serves"]
            == payload["reads"]
        )

    def test_classify_command_json(self, capsys):
        code = main(["classify", "--query", "Ans(x, y) :- E(x, y), x != y", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query_class"] == "DCQ"
        assert payload["fpras"] == "no"
        assert payload["fptras"] == "yes"

    def test_classify_command_text(self, capsys):
        code = main(["classify", "--query", "Ans(x) :- E(x, y), !F(x, y)"])
        assert code == 0
        assert "ECQ" in capsys.readouterr().out

    def test_sample_command(self, tmp_path, capsys):
        path = self._write_db(tmp_path)
        code = main(
            ["sample", "--query", "Ans(x, y) :- E(x, y)", "--database", str(path),
             "-n", "3", "--exact", "--seed", "1"]
        )
        assert code == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) == 3

    def test_sample_no_answers(self, tmp_path, capsys):
        database = Database.from_relations({"E": [(1, 1)]}, universe=[1])
        path = tmp_path / "db.json"
        save_database_json(database, path)
        code = main(
            ["sample", "--query", "Ans(x, y) :- E(x, y), x != y", "--database",
             str(path), "--exact"]
        )
        assert code == 0
        assert "(no answers)" in capsys.readouterr().out

    def test_edge_list_input(self, tmp_path, capsys):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n2 3\n1 3\n")
        code = main(
            ["count", "--query", "Ans(x) :- E(x, y), E(x, z), y != z",
             "--edge-list", str(path), "--seed", "0", "--exact"]
        )
        assert code == 0
        assert "exact:       3" in capsys.readouterr().out

    def test_both_database_sources_rejected(self, tmp_path, capsys):
        path = self._write_db(tmp_path)
        code = main(
            ["count", "--query", "Ans(x) :- E(x, y)", "--database", str(path),
             "--edge-list", str(path)]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_database_rejected(self, capsys):
        code = main(["count", "--query", "Ans(x) :- E(x, y)"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_batch_adaptive_persists_profiles(self, tmp_path, capsys):
        path = tmp_path / "profiles.json"
        batch = [
            "batch", "--workload", "4", "--executor", "serial",
            "--adaptive", "--latency-budget", "0.5", "--profiles", str(path),
        ]
        assert main(batch + ["--seed", "1"]) == 0
        capsys.readouterr()
        store = ProfileStore.load(path)
        first_runs = store.stats()["runs"]
        assert first_runs > 0
        # A second process-equivalent run loads the snapshot and adds to it.
        assert main(batch + ["--seed", "2"]) == 0
        capsys.readouterr()
        assert ProfileStore.load(path).stats()["runs"] == 2 * first_runs

    def test_profiles_show_export_import(self, tmp_path, capsys):
        store = ProfileStore()
        store.record("Ans(f0):-E(f0,e0)", 100, "exact", 0.002, 5.0)
        store.record("Ans(f0):-E(f0,e0)", 100, "fpras_cq", 0.2, 5.0)
        source = tmp_path / "a.json"
        store.save(source)

        assert main(["profiles", "show", str(source)]) == 0
        shown = capsys.readouterr().out
        assert "2 entries, 2 recorded runs" in shown
        assert "exact" in shown and "fpras_cq" in shown

        assert main(["profiles", "show", str(source), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 2
        assert len(payload["profiles"]) == 2

        exported = tmp_path / "b.json"
        assert main(
            ["profiles", "export", str(source), "--out", str(exported)]
        ) == 0
        capsys.readouterr()
        assert ProfileStore.load(exported).stats()["runs"] == 2

        merged = tmp_path / "merged.json"
        assert main(
            ["profiles", "import", str(source), str(exported),
             "--into", str(merged)]
        ) == 0
        assert "2 snapshot(s)" in capsys.readouterr().out
        stats = ProfileStore.load(merged).stats()
        assert stats["entries"] == 2
        assert stats["runs"] == 4

    def test_profiles_show_missing_file_rejected(self, tmp_path, capsys):
        code = main(["profiles", "show", str(tmp_path / "nope.json")])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")
