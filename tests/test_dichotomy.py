"""Tests for the Figure-1 dichotomy classifier."""

from __future__ import annotations

import pytest

from repro.core import ClassVerdict, Verdict, classify_class, classify_query
from repro.queries import QueryClass, parse_query
from repro.queries.builders import (
    clique_query,
    hamiltonian_path_query,
    high_arity_acyclic_query,
    star_query,
)


class TestClassifyClassBoundedArity:
    """The left half of Figure 1 (bounded arity)."""

    @pytest.mark.parametrize("query_class", list(QueryClass))
    def test_bounded_treewidth_has_fptras(self, query_class):
        verdict = classify_class(query_class, bounded_arity=True, bounded_treewidth=True)
        assert verdict.fptras is Verdict.YES
        assert "Theorem 5" in verdict.fptras_reference

    @pytest.mark.parametrize("query_class", list(QueryClass))
    def test_unbounded_treewidth_has_no_fptras(self, query_class):
        verdict = classify_class(query_class, bounded_arity=True, bounded_treewidth=False)
        assert verdict.fptras is Verdict.NO
        assert "Observation 9" in verdict.fptras_reference

    def test_cq_bounded_treewidth_has_fpras(self):
        verdict = classify_class(QueryClass.CQ, bounded_arity=True, bounded_treewidth=True)
        assert verdict.fpras is Verdict.YES

    @pytest.mark.parametrize("query_class", [QueryClass.DCQ, QueryClass.ECQ])
    def test_disequalities_rule_out_fpras(self, query_class):
        """Observation 10: no FPRAS even at treewidth 1."""
        verdict = classify_class(query_class, bounded_arity=True, bounded_treewidth=True)
        assert verdict.fpras is Verdict.NO
        assert "Observation 10" in verdict.fpras_reference


class TestClassifyClassUnboundedArity:
    """The right half of Figure 1 (unbounded arity)."""

    def test_bounded_fhw_cq_has_fpras_theorem_16(self):
        verdict = classify_class(
            QueryClass.CQ,
            bounded_arity=False,
            bounded_treewidth=False,
            bounded_hypertreewidth=False,
            bounded_fractional_hypertreewidth=True,
        )
        assert verdict.fpras is Verdict.YES
        assert "Theorem 16" in verdict.fpras_reference

    def test_bounded_hw_cq_credits_arenas(self):
        verdict = classify_class(
            QueryClass.CQ,
            bounded_arity=False,
            bounded_treewidth=False,
            bounded_hypertreewidth=True,
        )
        assert verdict.fpras is Verdict.YES
        assert "Arenas" in verdict.fpras_reference

    @pytest.mark.parametrize("query_class", [QueryClass.CQ, QueryClass.DCQ])
    def test_bounded_adaptive_width_fptras_theorem_13(self, query_class):
        verdict = classify_class(
            query_class,
            bounded_arity=False,
            bounded_treewidth=False,
            bounded_hypertreewidth=False,
            bounded_fractional_hypertreewidth=False,
            bounded_adaptive_width=True,
        )
        assert verdict.fptras is Verdict.YES
        assert "Theorem 13" in verdict.fptras_reference

    def test_ecq_bounded_adaptive_width_open(self):
        verdict = classify_class(
            QueryClass.ECQ,
            bounded_arity=False,
            bounded_treewidth=False,
            bounded_adaptive_width=True,
        )
        assert verdict.fptras is Verdict.OPEN

    @pytest.mark.parametrize("query_class", list(QueryClass))
    def test_unbounded_adaptive_width_no_fptras(self, query_class):
        verdict = classify_class(
            query_class,
            bounded_arity=False,
            bounded_treewidth=False,
            bounded_adaptive_width=False,
        )
        assert verdict.fptras is Verdict.NO
        assert "Observation 15" in verdict.fptras_reference

    def test_cq_bounded_aw_unbounded_fhw_fpras_open(self):
        verdict = classify_class(
            QueryClass.CQ,
            bounded_arity=False,
            bounded_treewidth=False,
            bounded_hypertreewidth=False,
            bounded_fractional_hypertreewidth=False,
            bounded_adaptive_width=True,
        )
        assert verdict.fpras is Verdict.OPEN

    def test_domination_chain_defaults(self):
        """Unspecified measures default along the Lemma-12 domination chain."""
        verdict = classify_class(
            QueryClass.CQ, bounded_arity=False, bounded_treewidth=True
        )
        assert verdict.bounded_hypertreewidth
        assert verdict.bounded_fractional_hypertreewidth
        assert verdict.bounded_adaptive_width


class TestClassifyQuery:
    def test_cq_recommends_fpras(self):
        report = classify_query(parse_query("Ans(x) :- E(x, y)"))
        assert report.query_class is QueryClass.CQ
        assert report.recommended_algorithm == "fpras_count_cq"

    def test_dcq_recommends_theorem_13(self):
        report = classify_query(star_query(3, with_disequalities=True))
        assert report.query_class is QueryClass.DCQ
        assert report.recommended_algorithm == "fptras_count_dcq"

    def test_ecq_recommends_theorem_5(self):
        report = classify_query(parse_query("Ans(x) :- E(x, y), !F(x, y), x != y"))
        assert report.query_class is QueryClass.ECQ
        assert report.recommended_algorithm == "fptras_count_ecq"

    def test_hamiltonian_query_report(self):
        report = classify_query(hamiltonian_path_query(5))
        assert report.widths.treewidth == 1
        assert report.query_class is QueryClass.DCQ
        # Figure 1: its class has an FPTRAS but no FPRAS.
        assert report.class_verdict_if_widths_bounded.fptras is Verdict.YES
        assert report.class_verdict_if_widths_bounded.fpras is Verdict.NO

    def test_clique_query_widths(self):
        report = classify_query(clique_query(4))
        assert report.widths.treewidth == 3

    def test_high_arity_query_widths(self):
        report = classify_query(high_arity_acyclic_query(3, 4, shared=1))
        assert report.widths.fractional_hypertreewidth == pytest.approx(1.0)
        assert report.widths.treewidth >= 3
