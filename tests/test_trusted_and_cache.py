"""Tests for `Constraint.trusted()` (vs the validating constructor) and for
the Structure version counters / derived caches the service keys on."""

import pytest

from repro.relational.csp import Constraint, CSPInstance
from repro.relational.structure import Database, Structure


@pytest.fixture
def structure():
    return Structure(relations={"E": [(1, 2), (2, 3), (3, 1)], "F": [(1, 1)]})


class TestTrustedConstraint:
    def test_trusted_equals_validated_constructor(self):
        scope = ("x", "y")
        allowed = frozenset({(1, 2), (2, 3)})
        validated = Constraint(scope=scope, allowed=allowed)
        trusted = Constraint.trusted(scope, allowed)
        assert trusted.scope == validated.scope
        assert trusted.allowed == validated.allowed
        assert trusted == validated

    def test_trusted_and_validated_solve_identically(self, structure):
        universe = set(structure.canonical_universe())
        domains = {"x": set(universe), "y": set(universe), "z": set(universe)}
        edge = structure.relation("E")

        def build(factory):
            return CSPInstance(
                {v: set(d) for v, d in domains.items()},
                [factory(("x", "y"), edge), factory(("y", "z"), edge)],
            )

        validated = build(lambda scope, allowed: Constraint(scope=scope, allowed=allowed))
        trusted = build(
            lambda scope, allowed: Constraint.trusted(scope, frozenset(allowed))
        )
        assert validated.solve() == trusted.solve()

    def test_validating_constructor_rejects_arity_mismatch(self):
        with pytest.raises(ValueError, match="does not match scope"):
            Constraint(scope=("x",), allowed=frozenset({(1, 2)}))

    def test_trusted_skips_validation(self):
        # The caller vouches for arity; no scan, no error.
        constraint = Constraint.trusted(("x",), frozenset({(1, 2)}))
        assert constraint.allowed == frozenset({(1, 2)})

    def test_trusted_shares_the_structure_index(self, structure):
        index = structure.relation_index("E")
        constraint = Constraint.trusted(("x", "y"), index=index)
        sibling = Constraint.trusted(("y", "z"), index=index)
        assert constraint.index is index
        assert sibling.index is index
        assert constraint.allowed == index.allowed

    def test_trusted_without_allowed_or_index_raises(self):
        with pytest.raises(ValueError, match="needs either"):
            Constraint.trusted(("x", "y"))


class TestVersionCounters:
    def test_fingerprint_changes_only_for_the_mutated_relation(self, structure):
        before_e = structure.version_fingerprint(["E"])
        before_f = structure.version_fingerprint(["F"])
        structure.add_fact("E", (2, 1))
        assert structure.version_fingerprint(["E"]) != before_e
        assert structure.version_fingerprint(["F"]) == before_f

    def test_fingerprint_tracks_universe_growth(self, structure):
        before = structure.version_fingerprint(["F"])
        structure.add_fact("E", (4, 5))  # new elements, F untouched
        after = structure.version_fingerprint(["F"])
        assert after != before  # universe version is part of every fingerprint

    def test_duplicate_facts_do_not_bump_versions(self, structure):
        before = structure.version_fingerprint()
        structure.add_fact("E", (1, 2))  # already present
        assert structure.version_fingerprint() == before

    def test_tokens_are_unique_and_copies_get_fresh_ones(self, structure):
        other = Structure(relations={"E": [(1, 2)]})
        assert structure.structure_token != other.structure_token
        copy = structure.copy()
        assert copy.structure_token != structure.structure_token
        # ... while the content-tracking counters are carried over.
        assert copy.version_fingerprint() == structure.version_fingerprint()

    def test_relation_index_cache_invalidates_on_mutation(self, structure):
        first = structure.relation_index("E")
        assert structure.relation_index("E") is first  # cached
        assert structure.relation_index("F") is not first
        structure.add_fact("E", (3, 2))
        second = structure.relation_index("E")
        assert second is not first
        assert (3, 2) in second.allowed

    def test_database_inherits_the_machinery(self):
        database = Database.from_relations({"E": [(1, 2)]})
        token = database.structure_token
        fingerprint = database.version_fingerprint(["E"])
        database.add_fact("E", (2, 1))
        assert database.structure_token == token
        assert database.version_fingerprint(["E"]) != fingerprint
