"""Tests for the observed-cost adaptive planner loop: the
:class:`~repro.service.cost.CostModel` predictions, the planner's adaptive
overlay (override > budget-adaptive > dichotomy), predicted-vs-actual
accounting, and drift-triggered re-planning in standing subscriptions.

The load-bearing contracts:

* **Cold means dichotomy.**  With an empty (or under-observed) profile
  store — or with ``adaptive=False`` — adaptive plans are byte-identical to
  the static Figure-1 plans.
* **Estimates never move.**  The adaptive overlay changes *which* scheme
  runs, never what any scheme computes: estimates stay bit-identical to a
  forced-method run under equal seeds, including under fault injection.
* **Plans are pure.**  Same profile snapshot + same request ⇒ same plan,
  across services and across processes (via persisted snapshots).
"""

from __future__ import annotations

import pytest

from repro.core import count_answers_exact
from repro.core.registry import REGISTRY
from repro.obs import Tracer, fingerprint_class
from repro.queries.builders import path_query
from repro.relational import Database
from repro.resilience import uniform_plan
from repro.resilience.retry import RetryPolicy
from repro.service import (
    CostModel,
    CountingService,
    CountRequest,
    ServiceConfig,
    canonical_query_key,
)
from repro.service.cost import PREDICTION_BASIS
from repro.service.plan import PlannerConfig
from repro.obs.profile import ProfileStore
from repro.workloads import database_from_graph, erdos_renyi_graph

TWO_HOP = path_query(2, free_endpoints_only=True)

#: Loose accuracy knobs for tests that actually execute the FPRAS — the
#: contracts under test are about plan *selection*, not estimator precision,
#: and the default epsilon costs seconds per call.
LOOSE = {"epsilon": 0.5, "delta": 0.3}


def large_database():
    """A database the dichotomy calls large (size > 800): static pick for a
    CQ is fpras_cq."""
    return database_from_graph(erdos_renyi_graph(42, 0.25, rng=1), symmetric=True)


def adaptive_config(**overrides):
    planner = PlannerConfig(adaptive=True, **overrides.pop("planner", {}))
    return ServiceConfig(executor="serial", planner=planner, **overrides)


def warm(service, query, database, scheme, seconds_each, runs=3, engine="indexed"):
    """Synthetically observe `runs` executions of `scheme` at this database's
    size bucket (full control over which scheme looks cheap)."""
    key = canonical_query_key(query)
    for _ in range(runs):
        service.profiles.record(
            key, database.size(), scheme, seconds_each, 1.0, engine=engine
        )


# ----------------------------------------------------------------- CostModel
class TestCostModel:
    def test_min_observations_validated(self):
        with pytest.raises(ValueError):
            CostModel(ProfileStore(), min_observations=0)

    def test_cold_until_min_observations_then_p95(self):
        store = ProfileStore()
        model = CostModel(store, min_observations=3)
        store.record("k", 100, "exact", 0.01, engine="indexed")
        store.record("k", 100, "exact", 0.02, engine="indexed")
        cold = model.predict("k", 100, "exact", "indexed")
        assert cold.cold and cold.seconds is None and cold.runs == 2
        store.record("k", 100, "exact", 0.03, engine="indexed")
        hot = model.predict("k", 100, "exact", "indexed")
        profile = store.get("k", 100, "exact")
        assert not hot.cold
        # Bit-identical to the sketch's own quantile — the planner's numbers
        # are exactly the registry of record, nothing re-derived.
        assert hot.seconds == profile.latency.quantile(0.95)
        assert hot.runs == 3

    def test_never_borrows_across_size_buckets(self):
        store = ProfileStore()
        model = CostModel(store, min_observations=1)
        store.record("k", 100, "exact", 0.01)
        same_bucket = model.predict("k", 120, "exact", "indexed")
        other_bucket = model.predict("k", 10**6, "exact", "indexed")
        assert not same_bucket.cold
        assert other_bucket.cold
        assert other_bucket.fingerprint_class == fingerprint_class(10**6)

    def test_snapshot_token_tracks_store_version(self):
        store = ProfileStore()
        model = CostModel(store)
        before = model.snapshot_token
        store.record("k", 100, "exact", 0.01)
        assert model.snapshot_token == before + 1 == store.version

    def test_predict_schemes_preserves_order(self):
        model = CostModel(ProfileStore())
        names = list(REGISTRY.names(include_unions=False))
        predictions = model.predict_schemes("k", 100, names, "indexed")
        assert list(predictions) == names


# ---------------------------------------------------- the adaptive overlay
class TestAdaptiveOverlay:
    def test_cold_store_plans_byte_identical_to_static(self):
        database = large_database()
        static = CountingService(database, ServiceConfig(executor="serial"))
        adaptive = CountingService(database, adaptive_config())
        static_plan = static.plan(TWO_HOP)
        cold_plan = adaptive.plan(TWO_HOP)
        assert cold_plan.predicted is None
        assert cold_plan.to_dict() == static_plan.to_dict()

    def test_adaptive_false_ignores_warm_profiles(self):
        database = large_database()
        static = CountingService(database, ServiceConfig(executor="serial"))
        off = CountingService(database, ServiceConfig(executor="serial"))
        warm(off, TWO_HOP, database, "exact", 0.001)
        assert off.plan(TWO_HOP).to_dict() == static.plan(TWO_HOP).to_dict()

    def test_warm_overlay_picks_cheapest_sound_scheme(self):
        database = large_database()
        service = CountingService(database, adaptive_config())
        warm(service, TWO_HOP, database, "exact", 0.001)
        warm(service, TWO_HOP, database, "fpras_cq", 5.0)
        plan = service.plan(TWO_HOP)
        # Static pick for a large CQ is fpras_cq; the observed costs flip it.
        assert plan.scheme == "exact"
        assert plan.predicted["chosen"] == "exact"
        assert plan.predicted["baseline"] == "fpras_cq"
        assert plan.predicted["basis"] == PREDICTION_BASIS
        # Every sound candidate is priced in the payload and the explain().
        candidates = plan.predicted["candidates"]
        query_class = TWO_HOP.query_class()
        for name in REGISTRY.names(include_unions=False):
            if query_class in REGISTRY.get(name).query_classes:
                assert name in candidates
        text = plan.explain()
        assert "predicted:" in text
        assert "* exact:" in text
        assert "replaces the static pick 'fpras_cq'" in " ".join(plan.trace)

    def test_unsound_schemes_are_never_candidates(self):
        database = large_database()
        service = CountingService(database, adaptive_config())
        warm(service, TWO_HOP, database, "exact", 0.001)
        candidates = service.plan(TWO_HOP).predicted["candidates"]
        query_class = TWO_HOP.query_class()
        for name in candidates:
            assert query_class in REGISTRY.get(name).query_classes

    def test_budget_rejects_over_budget_schemes(self):
        database = large_database()
        service = CountingService(database, adaptive_config())
        warm(service, TWO_HOP, database, "exact", 5.0)
        warm(service, TWO_HOP, database, "fpras_cq", 0.001)
        plan = service.plan(TWO_HOP, latency_budget_seconds=1.0)
        assert plan.scheme == "fpras_cq"
        exact_verdict = plan.predicted["candidates"]["exact"]["verdict"]
        assert "over budget" in exact_verdict
        assert plan.predicted["budget_seconds"] == 1.0

    def test_no_scheme_fits_budget_serves_best_effort(self):
        database = large_database()
        service = CountingService(database, adaptive_config())
        warm(service, TWO_HOP, database, "exact", 5.0)
        warm(service, TWO_HOP, database, "fpras_cq", 9.0)
        plan = service.plan(TWO_HOP, latency_budget_seconds=0.5)
        assert plan.scheme == "exact"  # cheapest warm, best effort
        verdict = plan.predicted["candidates"]["exact"]["verdict"]
        assert "best effort" in verdict

    def test_override_beats_adaptive(self):
        database = large_database()
        service = CountingService(database, adaptive_config())
        warm(service, TWO_HOP, database, "exact", 0.001)
        warm(service, TWO_HOP, database, "fpras_cq", 5.0)
        plan = service.plan(TWO_HOP, method="fpras_cq")
        assert plan.scheme == "fpras_cq"
        assert plan.predicted is None  # overlay never second-guesses a force

    def test_config_budget_is_the_default_request_budget(self):
        database = large_database()
        service = CountingService(
            database, adaptive_config(latency_budget_seconds=1.0)
        )
        warm(service, TWO_HOP, database, "exact", 5.0)
        warm(service, TWO_HOP, database, "fpras_cq", 0.001)
        result = service.submit(TWO_HOP, seed=7, **LOOSE)
        assert result.scheme == "fpras_cq"
        assert result.plan.predicted["budget_seconds"] == 1.0

    def test_plans_are_pure_functions_of_the_snapshot(self, tmp_path):
        database = large_database()
        path = tmp_path / "profiles.json"
        seed_service = CountingService(database, adaptive_config())
        warm(seed_service, TWO_HOP, database, "exact", 0.001)
        warm(seed_service, TWO_HOP, database, "fpras_cq", 5.0)
        seed_service.profiles.save(path)
        plans = []
        for _ in range(2):
            service = CountingService(
                database, adaptive_config(profile_path=str(path))
            )
            plans.append(service.plan(TWO_HOP).to_dict())
            plans.append(service.plan(TWO_HOP).to_dict())  # and re-planned
        assert plans[0] == plans[1] == plans[2] == plans[3]
        assert plans[0]["scheme"] == "exact"


# --------------------------------------- estimates never move (differential)
class TestAdaptiveDifferential:
    def test_adaptive_choice_keeps_estimates_bit_identical(self):
        database = large_database()
        adaptive = CountingService(database, adaptive_config())
        warm(adaptive, TWO_HOP, database, "fpras_cq", 0.001)
        warm(adaptive, TWO_HOP, database, "exact", 5.0)
        result = adaptive.submit(TWO_HOP, seed=2022, **LOOSE)
        assert result.scheme == "fpras_cq"
        static = CountingService(database, ServiceConfig(executor="serial"))
        forced = static.submit(TWO_HOP, seed=2022, method="fpras_cq", **LOOSE)
        assert result.estimate == forced.estimate
        assert result.seed == forced.seed

    def test_adaptive_exact_pick_matches_ground_truth(self):
        database = large_database()
        adaptive = CountingService(database, adaptive_config())
        warm(adaptive, TWO_HOP, database, "exact", 0.001)
        warm(adaptive, TWO_HOP, database, "fpras_cq", 5.0)
        result = adaptive.submit(TWO_HOP, seed=5)
        assert result.scheme == "exact"
        assert result.estimate == count_answers_exact(TWO_HOP, database)

    def test_adaptive_estimates_bit_identical_under_faults(self):
        database = large_database()
        plan = uniform_plan(seed=13, rate=1.0, sites=("executor.task",))
        retry = RetryPolicy(max_attempts=3)

        def run(config, method):
            service = CountingService(database, config)
            warm(service, TWO_HOP, database, "fpras_cq", 0.001)
            warm(service, TWO_HOP, database, "exact", 5.0)
            return service.count_batch(
                [CountRequest(query=TWO_HOP, method=method, **LOOSE)],
                seed=99,
                fault_plan=plan,
                retry=retry,
            )

        adaptive = run(adaptive_config(), method=None)
        forced = run(ServiceConfig(executor="serial"), method="fpras_cq")
        assert adaptive.retries == forced.retries > 0
        assert [r.scheme for r in adaptive.results] == ["fpras_cq"]
        assert [r.estimate for r in adaptive.results] == [
            r.estimate for r in forced.results
        ]


# ----------------------------------------------- predicted-vs-actual closing
class TestPredictionAccounting:
    def test_submit_scores_the_prediction(self):
        database = large_database()
        tracer = Tracer()
        service = CountingService(database, adaptive_config(tracer=tracer))
        warm(service, TWO_HOP, database, "exact", 0.001)
        result = service.submit(TWO_HOP, seed=3)
        predicted = result.plan.predicted
        assert predicted["chosen"] == "exact"
        assert predicted["actual_seconds"] > 0
        assert predicted["outcome"] in (
            "accurate",
            "underestimate",
            "overestimate",
            "unscored",
        )
        if predicted["error_ratio"] is not None:
            assert predicted["error_ratio"] == pytest.approx(
                predicted["actual_seconds"]
                / predicted["candidates"]["exact"]["seconds"]
            )
        assert "predicted-vs-actual:" in result.plan.explain()
        # The verdict landed in the metrics registry and the span tree.
        snapshot = service.metrics.snapshot()
        outcomes = snapshot["counters"]["planner.predictions"]
        assert sum(outcomes.values()) == 1
        events = [
            event
            for request_span in tracer.find("service.request")
            for event in request_span.events
            if event.get("note") == "planner.prediction"
        ]
        assert len(events) == 1
        assert events[0]["scheme"] == "exact"

    def test_cold_plans_record_no_prediction(self):
        database = large_database()
        service = CountingService(database, adaptive_config())
        result = service.submit(TWO_HOP, seed=3, **LOOSE)
        assert result.plan.predicted is None
        counters = service.metrics.snapshot()["counters"]
        assert "planner.predictions" not in counters


# ------------------------------------------------- drift-triggered replanning
def chain_edges(start, stop):
    return [(i, i + 1) for i in range(start, stop)]


class TestSubscriptionReplan:
    def test_bucket_crossing_replans_without_missing_updates(self):
        # A 150-edge chain: size = 1 + 151 + 300 = 452 (bucket 9, small =>
        # exact).  Growing the chain to 500 edges lands at size 1502 —
        # bucket 11 and past the 800 small-instance threshold — so the
        # re-plan flips to the large-database pick fpras_cq.
        database = Database.from_relations({"E": chain_edges(0, 150)})
        assert fingerprint_class(database.size()) == 9
        tracer = Tracer()
        service = CountingService(
            database, ServiceConfig(executor="serial", tracer=tracer)
        )
        subscription = service.subscribe(CountRequest(query=TWO_HOP, **LOOSE))
        assert subscription.scheme == "exact"
        for edge in chain_edges(150, 500):
            database.add_fact("E", edge)
        live = subscription.read()
        assert fingerprint_class(database.size()) == 11
        assert subscription.scheme == "fpras_cq"
        assert live.fresh and live.refreshed
        assert live.replans == 1
        assert any("size bucket crossed" in note for note in live.replan_events)
        # The re-planned refresh did not miss the new facts: the estimate
        # tracks the true count of the grown chain (499 two-paths).
        truth = count_answers_exact(TWO_HOP, database)
        assert truth == 499
        assert live.estimate == pytest.approx(truth, rel=0.5)
        replan_counter = service.metrics.snapshot()["counters"]["stream.replans"]
        assert sum(replan_counter.values()) == 1
        replan_events = [
            event
            for refresh_span in tracer.find("stream.refresh")
            for event in refresh_span.events
            if event.get("note") == "stream.replan"
        ]
        assert len(replan_events) == 1
        assert replan_events[0]["old_scheme"] == "exact"
        assert replan_events[0]["new_scheme"] == "fpras_cq"

    def test_forced_method_subscription_never_hops_schemes(self):
        database = Database.from_relations({"E": chain_edges(0, 150)})
        service = CountingService(database, ServiceConfig(executor="serial"))
        subscription = service.subscribe(
            CountRequest(query=TWO_HOP, method="exact")
        )
        for edge in chain_edges(150, 500):
            database.add_fact("E", edge)
        live = subscription.read()
        assert subscription.scheme == "exact"
        assert live.replans == 0
        assert live.estimate == count_answers_exact(TWO_HOP, database)

    def test_rolling_prediction_error_triggers_replan(self):
        # Synthetic history claims fpras_cq finished in microseconds a
        # hundred times over — so the warm overlay pins it at subscribe
        # time, and the sketch's p95 stays microsecond-scale while the real
        # second-scale refreshes blow the rolling error window.  The re-plan
        # then flips to exact, whose (equally synthetic) prediction is
        # cheaper still.
        database = large_database()
        service = CountingService(database, adaptive_config())
        warm(service, TWO_HOP, database, "fpras_cq", 0.0000001, runs=100)
        subscription = service.subscribe(CountRequest(query=TWO_HOP, **LOOSE))
        assert subscription.scheme == "fpras_cq"
        warm(service, TWO_HOP, database, "exact", 0.00000001)
        replanned_at = None
        for round_index in range(8):
            database.add_fact("E", (1000 + round_index, 1001 + round_index))
            live = subscription.read()
            if live.replans:
                replanned_at = round_index
                break
        assert replanned_at is not None
        assert subscription.scheme == "exact"
        assert any(
            "rolling prediction error" in note for note in live.replan_events
        )
        assert live.estimate == count_answers_exact(TWO_HOP, database)
