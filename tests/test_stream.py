"""Tests for the streaming subsystem: ``remove_fact`` / change capture in the
relational layer, incremental tuple indexes, exact delta counting, and the
live subscription handles of ``CountingService.subscribe``.

The differential classes are the subsystem's correctness harness: randomized
mixed insert/delete/query schedules where every incremental result is checked
bit-identical against a from-scratch recount of the same database state
(exact schemes), or against a direct registry call with the same derived seed
(approximate schemes).
"""

from __future__ import annotations

import random

import pytest

from repro.core import count_answers_exact
from repro.core.registry import REGISTRY
from repro.queries import parse_query
from repro.relational import Database, TupleIndex
from repro.relational.changelog import ChangeLog, ChangeLogGap, rewind
from repro.service import CountingService, CountRequest, ServiceConfig
from repro.stream import (
    delta_applicable,
    delta_count_exact,
    is_answer,
    run_stream,
    stream_schedule,
)
from repro.util.cache import LRUCache
from repro.util.rng import derive_seed
from repro.workloads import database_from_graph, erdos_renyi_graph


def triangle() -> Database:
    return Database.from_relations({"E": [(1, 2), (2, 3), (3, 1)]})


def service_for(database: Database) -> CountingService:
    return CountingService(database, ServiceConfig(executor="serial"))


# ---------------------------------------------------------------- remove_fact
class TestRemoveFact:
    def test_removes_and_returns_the_fact(self):
        db = triangle()
        assert db.remove_fact("E", (2, 3)) == (2, 3)
        assert db.relation("E") == frozenset({(1, 2), (3, 1)})

    def test_bumps_relation_and_fingerprint_versions(self):
        db = triangle()
        before = db.version_fingerprint(["E"])
        db.remove_fact("E", (1, 2))
        after = db.version_fingerprint(["E"])
        assert after != before
        assert after[1][0][1] == before[1][0][1] + 1

    def test_does_not_touch_other_relations_or_universe(self):
        db = triangle()
        db.add_fact("F", (1, 2))
        fingerprint_f = db.version_fingerprint(["F"])
        universe = db.universe
        db.remove_fact("E", (1, 2))
        assert db.version_fingerprint(["F"]) == fingerprint_f
        assert db.universe == universe  # elements stay once seen

    def test_invalidates_relation_index(self):
        db = triangle()
        stale = db.relation_index("E")
        db.remove_fact("E", (1, 2))
        fresh = db.relation_index("E")
        assert fresh.allowed == frozenset({(2, 3), (3, 1)})
        # The previously handed-out index keeps its consistent snapshot.
        assert stale.allowed == frozenset({(1, 2), (2, 3), (3, 1)})

    def test_invalidates_derived_cache(self):
        db = triangle()
        db.derived_cache()["probe"] = "stale"
        db.remove_fact("E", (1, 2))
        assert "probe" not in db.derived_cache()

    def test_unknown_relation_raises(self):
        with pytest.raises(KeyError, match="unknown relation"):
            triangle().remove_fact("nope", (1, 2))

    def test_unknown_fact_raises(self):
        with pytest.raises(KeyError, match="no fact"):
            triangle().remove_fact("E", (9, 9))

    def test_add_remove_round_trip_restores_equality(self):
        db = triangle()
        other = triangle()
        db.add_fact("E", (1, 3))
        db.remove_fact("E", (1, 3))
        assert db == other


# ----------------------------------------------------------- incremental index
class TestIncrementalTupleIndex:
    def test_random_ops_match_full_rebuild(self):
        rng = random.Random(0)
        facts: set = set()
        index = TupleIndex.from_tuples(facts, arity=2)
        for step in range(200):
            if facts and rng.random() < 0.45:
                fact = sorted(facts)[rng.randrange(len(facts))]
                facts.discard(fact)
                index = index.with_fact_removed(fact)
            else:
                fact = (rng.randrange(6), rng.randrange(6))
                if fact in facts:
                    continue
                facts.add(fact)
                index = index.with_fact_added(fact)
            reference = TupleIndex.from_tuples(facts, arity=2)
            assert index.allowed == reference.allowed, step
            assert {index.tuples[tid] for tid in index.all_ids} == facts, step
            for position in range(2):
                got = {
                    value: frozenset(index.tuples[tid] for tid in ids)
                    for value, ids in index.by_position[position].items()
                }
                want = {
                    value: frozenset(reference.tuples[tid] for tid in ids)
                    for value, ids in reference.by_position[position].items()
                }
                assert got == want, step

    def test_derivation_is_persistent(self):
        base = TupleIndex.from_tuples({(1, 2), (2, 3)}, arity=2)
        grown = base.with_fact_added((3, 4))
        shrunk = base.with_fact_removed((1, 2))
        assert base.allowed == frozenset({(1, 2), (2, 3)})
        assert grown.allowed == frozenset({(1, 2), (2, 3), (3, 4)})
        assert shrunk.allowed == frozenset({(2, 3)})

    def test_add_existing_is_noop_and_remove_missing_raises(self):
        base = TupleIndex.from_tuples({(1, 2)}, arity=2)
        assert base.with_fact_added((1, 2)) is base
        with pytest.raises(KeyError):
            base.with_fact_removed((9, 9))
        with pytest.raises(ValueError):
            base.with_fact_added((1, 2, 3))

    def test_structure_folds_pending_deltas_instead_of_rebuilding(self):
        db = triangle()
        db.relation_index("E")  # prime the cache
        db.add_fact("E", (1, 3))
        db.remove_fact("E", (2, 3))
        folded = db.relation_index("E")
        assert folded.allowed == db.relation("E")
        # CSP counts through the folded index agree with a fresh structure.
        query = parse_query("Ans(x, y) :- E(x, y), E(y, z)")
        fresh = Database.from_relations({"E": sorted(db.relation("E"))})
        assert count_answers_exact(query, db) == count_answers_exact(query, fresh)

    def test_copies_fold_independently(self):
        db = triangle()
        db.relation_index("E")
        db.add_fact("E", (1, 3))  # pending delta, not yet folded
        twin = db.copy()
        db.remove_fact("E", (2, 3))
        assert twin.relation_index("E").allowed == frozenset(
            {(1, 2), (2, 3), (3, 1), (1, 3)}
        )
        assert db.relation_index("E").allowed == frozenset(
            {(1, 2), (3, 1), (1, 3)}
        )

    def test_version_skip_beyond_limit_falls_back_to_rebuild(self):
        from repro.relational import structure as structure_module

        db = triangle()
        db.relation_index("E")
        for index in range(structure_module._INDEX_DELTA_LIMIT + 2):
            db.add_fact("E", (100 + index, 200 + index))
        assert not db._relation_index_pending.get("E")
        assert db.relation_index("E").allowed == db.relation("E")


# ------------------------------------------------------------------ change log
class TestChangeLog:
    def test_records_net_deltas_between_fingerprints(self):
        db = triangle()
        log = ChangeLog(db)
        fingerprint = db.version_fingerprint(["E"])
        db.add_fact("E", (1, 3))
        db.remove_fact("E", (2, 3))
        db.add_fact("E", (9, 9))
        db.remove_fact("E", (9, 9))  # nets out
        delta = log.delta_since(fingerprint)
        assert delta["E"].added == frozenset({(1, 3)})
        assert delta["E"].removed == frozenset({(2, 3)})

    def test_uncovered_fingerprint_raises_gap(self):
        db = triangle()
        fingerprint = db.version_fingerprint(["E"])
        db.add_fact("E", (1, 3))  # mutation before the log attaches
        log = ChangeLog(db)
        with pytest.raises(ChangeLogGap):
            log.delta_since(fingerprint)

    def test_trim_forgets_consumed_events(self):
        db = triangle()
        log = ChangeLog(db)
        db.add_fact("E", (1, 3))
        consumed = db.version_fingerprint(["E"])
        db.add_fact("E", (3, 2))
        assert log.trim(consumed) == 1
        assert not log.covers((0, (("E", 0),)))
        delta = log.delta_since(consumed)
        assert delta["E"].added == frozenset({(3, 2)})

    def test_detach_stops_recording_and_copies_are_not_observed(self):
        db = triangle()
        log = ChangeLog(db)
        twin = db.copy()
        twin.add_fact("E", (7, 7))
        log.detach()
        db.add_fact("E", (8, 8))
        assert log.num_events() == 0

    def test_rewind_restores_old_contents(self):
        db = triangle()
        log = ChangeLog(db)
        fingerprint = db.version_fingerprint(["E"])
        before = db.relation("E")
        db.add_fact("E", (1, 3))
        db.remove_fact("E", (3, 1))
        old = rewind(db, log.delta_since(fingerprint))
        assert old.relation("E") == before
        assert db.relation("E") == frozenset({(1, 2), (2, 3), (1, 3)})


# -------------------------------------------------------------- delta counting
DELTA_QUERIES = [
    # Quantified CQ: projections collide, exercises the candidates strategy.
    "Ans(x, y) :- E(x, y), E(y, z)",
    # Quantifier-free DCQ: exercises inclusion–exclusion.
    "Ans(x, y, z) :- E(x, y), E(y, z), x != z",
    # Quantified DCQ.
    "Ans(x) :- E(x, y), E(x, z), y != z",
    # Quantified ECQ with a negated atom over a second mutated relation.
    "Ans(x) :- E(x, y), E(y, z), !F(y, z)",
]


def mutate(db: Database, rng: random.Random, relations=("E",)) -> None:
    """Apply 1-3 random single-fact mutations (inserts may add a vertex)."""
    universe = sorted(db.universe, key=repr)
    for _ in range(rng.randint(1, 3)):
        name = relations[rng.randrange(len(relations))]
        facts = sorted(db.relation(name), key=repr)
        if facts and rng.random() < 0.45:
            db.remove_fact(name, facts[rng.randrange(len(facts))])
        else:
            if rng.random() < 0.05:
                u = f"fresh{rng.randrange(10 ** 6)}"
            else:
                u = universe[rng.randrange(len(universe))]
            v = universe[rng.randrange(len(universe))]
            if (u, v) not in db.relation(name):
                db.add_fact(name, (u, v))


class TestDeltaCountExact:
    @pytest.mark.parametrize("query_text", DELTA_QUERIES)
    def test_differential_against_recounts_over_randomized_schedules(
        self, query_text
    ):
        """>= 200 randomized mutation steps in total across the four shapes,
        each step's incremental count bit-identical to a recount."""
        query = parse_query(query_text)
        rng = random.Random(hash(query_text) & 0xFFFF)
        db = database_from_graph(erdos_renyi_graph(9, 0.3, rng=3))
        from repro.relational.signature import RelationSymbol

        db.add_relation(RelationSymbol("F", 2))
        db.add_fact("F", (0, 1))
        relations = ("E", "F") if "F" in query_text else ("E",)
        count = count_answers_exact(query, db)
        log = ChangeLog(db)
        names = [a.relation for a in query.atoms] + [
            a.relation for a in query.negated_atoms
        ]
        fingerprint = db.version_fingerprint(names)
        strategies = set()
        for step in range(50):
            universe_version = db._universe_version
            mutate(db, rng, relations=relations)
            if not delta_applicable(
                query, db._universe_version != universe_version
            ):
                count = count_answers_exact(query, db)
            else:
                delta = log.delta_since(fingerprint)
                old = rewind(db, delta)
                report = delta_count_exact(query, old, db, delta)
                strategies.add(report.strategy)
                count = count + report.delta
            expected = count_answers_exact(query, db)
            assert count == expected, f"step {step}: {count} != {expected}"
            fingerprint = db.version_fingerprint(names)
            log.trim(fingerprint)
        assert strategies  # at least one non-trivial incremental step ran

    def test_both_strategies_agree_on_quantifier_free_queries(self):
        query = parse_query("Ans(x, y, z) :- E(x, y), E(y, z), x != z")
        db = database_from_graph(erdos_renyi_graph(8, 0.35, rng=5))
        log = ChangeLog(db)
        fingerprint = db.version_fingerprint(["E"])
        db.add_fact("E", (0, 5))
        db.remove_fact("E", sorted(db.relation("E"))[0])
        delta = log.delta_since(fingerprint)
        old = rewind(db, delta)
        by_ie = delta_count_exact(
            query, old, db, delta, strategy="inclusion_exclusion"
        )
        by_candidates = delta_count_exact(
            query, old, db, delta, strategy="candidates"
        )
        assert by_ie.delta == by_candidates.delta
        assert by_ie.strategy == "inclusion_exclusion"
        assert by_candidates.strategy == "candidates"

    def test_inclusion_exclusion_refuses_quantified_queries(self):
        query = parse_query("Ans(x, y) :- E(x, y), E(y, z)")
        db = triangle()
        log = ChangeLog(db)
        fingerprint = db.version_fingerprint(["E"])
        db.add_fact("E", (2, 1))
        delta = log.delta_since(fingerprint)
        with pytest.raises(ValueError, match="existential"):
            delta_count_exact(
                query, rewind(db, delta), db, delta,
                strategy="inclusion_exclusion",
            )

    def test_untouched_relations_are_a_noop(self):
        query = parse_query("Ans(x, y) :- E(x, y)")
        db = triangle()
        db.add_fact("F", (1, 2))
        log = ChangeLog(db)
        fingerprint = db.version_fingerprint(["E", "F"])
        db.add_fact("F", (2, 3))
        delta = log.delta_since(fingerprint)
        report = delta_count_exact(query, rewind(db, delta), db, delta)
        assert report.strategy == "noop" and report.delta == 0

    def test_delta_applicable_depends_on_positive_atom_coverage(self):
        covered = parse_query("Ans(x) :- E(x, y)")
        uncovered = parse_query("Ans(x) :- E(x, y), !F(z, z), x != z")
        assert delta_applicable(covered, True)
        assert delta_applicable(uncovered, False)
        assert not delta_applicable(uncovered, True)

    def test_is_answer_matches_reference_semantics(self):
        query = parse_query("Ans(x, y) :- E(x, y), E(y, z)")
        db = triangle()
        answers = query.answers(db)
        for candidate in [(1, 2), (2, 1), (1, 1), (9, 9)]:
            assert is_answer(query, db, candidate) == (candidate in answers)


# ---------------------------------------------------------- live subscriptions
class TestLiveSubscriptions:
    def test_mixed_stream_exact_reads_equal_recounts(self):
        database = database_from_graph(erdos_renyi_graph(9, 0.3, rng=11))
        service = service_for(database)
        queries = [parse_query(text) for text in DELTA_QUERIES[:3]]
        schedule = stream_schedule(120, database, len(queries), rng=23)
        report, subscriptions = run_stream(
            service, queries, database, schedule, verify=True, seed=7
        )
        assert report.verified_reads > 0
        assert report.refreshes > 0 and "delta" in report.modes
        for subscription in subscriptions:
            live = subscription.read(force=True)
            assert live.estimate == count_answers_exact(
                subscription.query, database
            )
            subscription.close()
        assert service.stats()["stream"]["subscriptions"] == 0

    def test_untouched_relation_updates_are_served_fresh_without_refresh(self):
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=2))
        database.add_fact("F", (0, 1))
        service = service_for(database)
        subscription = service.subscribe(parse_query("Ans(x, y) :- E(x, y), E(y, z)"))
        for index in range(5):
            database.add_fact("F", (index, (index + 1) % 8))
        live = subscription.read()
        assert live.fresh and not live.refreshed and live.pending_ticks == 0
        assert live.refresh_count == 0
        subscription.close()

    def test_delta_refresh_reported_with_staleness_metadata(self):
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=2))
        service = service_for(database)
        subscription = service.subscribe(parse_query("Ans(x, y) :- E(x, y), E(y, z)"))
        database.add_fact("E", (0, 5)) if (0, 5) not in database.relation(
            "E"
        ) else database.remove_fact("E", (0, 5))
        live = subscription.read()
        assert live.refreshed and live.mode == "delta" and live.fresh
        assert live.estimate == count_answers_exact(subscription.query, database)
        subscription.close()

    @pytest.mark.parametrize("scheme", ["fpras_cq", "fptras_dcq", "fptras_ecq"])
    def test_approximate_refresh_equals_direct_registry_call(self, scheme):
        database = database_from_graph(erdos_renyi_graph(8, 0.35, rng=6))
        database.add_fact("F", (0, 1))
        service = service_for(database)
        query = parse_query(
            {
                "fpras_cq": "Ans(x, y) :- E(x, y), E(y, z)",
                "fptras_dcq": "Ans(x) :- E(x, y), E(x, z), y != z",
                "fptras_ecq": "Ans(x) :- E(x, y), E(y, z), !F(y, z)",
            }[scheme]
        )
        base_seed = 41
        epsilon, delta = 0.6, 0.3
        subscription = service.subscribe(
            CountRequest(
                query=query, epsilon=epsilon, delta=delta,
                seed=base_seed, method=scheme,
            )
        )
        assert subscription.scheme == scheme
        for refresh_index in (1, 2):
            # A guaranteed-new fact, so the mutation is never a no-op.
            database.add_fact("E", (200 + refresh_index, refresh_index))
            live = subscription.read()
            assert live.refreshed and live.mode in ("reestimate", "cached")
            assert live.seed == derive_seed(base_seed, refresh_index)
            direct = REGISTRY.count(
                scheme, query, database, epsilon=epsilon, delta=delta,
                rng=derive_seed(base_seed, refresh_index),
                engine=subscription.plan.engine,
            ).estimate
            assert live.estimate == direct
        subscription.close()

    def test_debounced_policy_coalesces_updates(self):
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=4))
        service = service_for(database)
        subscription = service.subscribe(
            parse_query("Ans(x, y) :- E(x, y)"),
            refresh="debounced",
            debounce_ticks=3,
        )
        database.add_fact("E", (0, 6)) if (0, 6) not in database.relation(
            "E"
        ) else database.remove_fact("E", (0, 6))
        stale = subscription.read()
        assert not stale.refreshed and not stale.fresh
        assert stale.pending_ticks == 1
        for index in range(2):  # reach the debounce threshold
            database.add_fact("E", (100 + index, index))
        refreshed = subscription.read()
        assert refreshed.refreshed and refreshed.fresh
        assert refreshed.estimate == count_answers_exact(
            subscription.query, database
        )
        subscription.close()

    def test_budget_policy_stops_refreshing_when_exhausted(self):
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=4))
        service = service_for(database)
        subscription = service.subscribe(
            parse_query("Ans(x, y) :- E(x, y)"),
            refresh="budget",
            budget_seconds=0.0,
        )
        database.add_fact("E", (50, 51))
        stale = subscription.read()
        assert not stale.refreshed and not stale.fresh
        forced = subscription.read(force=True)
        assert forced.fresh and forced.estimate == count_answers_exact(
            subscription.query, database
        )
        subscription.add_budget(60.0)
        database.add_fact("E", (52, 53))
        assert subscription.read().refreshed
        subscription.close()

    def test_changelog_gap_falls_back_to_recount(self):
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=4))
        service = service_for(database)
        first = service.subscribe(
            parse_query("Ans(x, y) :- E(x, y)"), refresh="debounced",
            debounce_ticks=10,
        )
        second = service.subscribe(parse_query("Ans(x, y) :- E(x, y), E(y, z)"))
        # Eager refreshes of `second` trim the shared log up to *its* needs
        # only; closing it then reopening state must not corrupt `first`.
        for index in range(3):
            database.add_fact("E", (60 + index, index))
            second.read()
        second.close()
        # Force a gap: detach + mutate + reattach via a fresh subscription.
        service._streams[database.structure_token].changelog.detach()
        database.add_fact("E", (70, 71))
        live = first.read(force=True)
        assert live.fresh
        assert live.estimate == count_answers_exact(first.query, database)
        # A detached log covers nothing, so the refresh must have recounted.
        assert live.mode in ("recount", "cached")
        first.close()

    def test_gap_recount_reanchors_so_next_refresh_delta_patches(self):
        """Regression: a change-log-gap recount must re-anchor the
        subscription's fingerprint (and trim the log) so the *next* refresh
        goes back to delta-patching instead of recounting forever."""
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=4))
        service = service_for(database)
        subscription = service.subscribe(parse_query("Ans(x, y) :- E(x, y)"))
        # Force a one-time gap: mutate, then trim the (still attached) log
        # past this subscription's anchor fingerprint.
        state = service._streams[database.structure_token]
        database.add_fact("E", (70, 71))
        state.changelog.trim(database.version_fingerprint(["E"]))
        gapped = subscription.read()
        assert gapped.mode in ("recount", "cached")
        assert gapped.gap_recounts == 1
        assert any("change-log gap" in note for note in gapped.degradations)
        assert gapped.estimate == count_answers_exact(subscription.query, database)
        # The recount re-anchored: this mutation is covered by the (re-
        # attached) log, so the following refresh delta-patches again.
        database.add_fact("E", (72, 73))
        patched = subscription.read()
        assert patched.mode == "delta"
        assert patched.gap_recounts == 1  # no new gap
        assert patched.estimate == count_answers_exact(subscription.query, database)
        # The re-anchor also trimmed the log back down to this watermark.
        assert state.changelog.num_events() == 0
        subscription.close()

    def test_closed_subscription_refuses_reads(self):
        database = database_from_graph(erdos_renyi_graph(6, 0.4, rng=1))
        service = service_for(database)
        subscription = service.subscribe(parse_query("Ans(x, y) :- E(x, y)"))
        subscription.close()
        with pytest.raises(RuntimeError, match="closed"):
            subscription.read()
        subscription.close()  # idempotent

    def test_subscribe_validates_policy(self):
        database = database_from_graph(erdos_renyi_graph(6, 0.4, rng=1))
        service = service_for(database)
        with pytest.raises(ValueError, match="refresh policy"):
            service.subscribe(parse_query("Ans(x, y) :- E(x, y)"), refresh="lazy")

    def test_failed_subscribe_leaves_no_observer_behind(self):
        database = database_from_graph(erdos_renyi_graph(6, 0.4, rng=1))
        service = service_for(database)
        with pytest.raises(ValueError):
            service.subscribe(parse_query("Ans(x, y) :- E(x, y)"), refresh="lazy")
        assert service._streams == {}
        assert database._fact_observers == []

    def test_unwatched_relation_churn_does_not_grow_the_changelog(self):
        database = database_from_graph(erdos_renyi_graph(7, 0.3, rng=3))
        service = service_for(database)
        subscription = service.subscribe(
            parse_query("Ans(x, y) :- E(x, y), E(y, z)")
        )
        state = service._streams[database.structure_token]
        for index in range(200):
            database.add_fact("G", (index, index + 1))
            assert subscription.read().fresh
        assert state.changelog.num_events() == 0
        # Watched relations still delta-patch correctly through the filter.
        database.add_fact("E", (300, 301))
        live = subscription.read()
        assert live.mode == "delta"
        assert live.estimate == count_answers_exact(
            subscription.query, database
        )
        subscription.close()


# --------------------------------------------------------------- cache hygiene
class TestStreamingCacheHygiene:
    def test_invalidate_where_drops_matching_keys(self):
        cache = LRUCache(16)
        for index in range(6):
            cache.put(("token", index), index)
        dropped = cache.invalidate_where(
            lambda key: isinstance(key, tuple) and key[1] % 2 == 0
        )
        assert dropped == 3
        assert len(cache) == 3
        assert cache.stats().evictions == 3
        assert cache.get(("token", 1)) == 1
        assert cache.get(("token", 2)) is None

    def test_service_evict_purges_only_that_database(self):
        db_a = database_from_graph(erdos_renyi_graph(7, 0.4, rng=1))
        db_b = database_from_graph(erdos_renyi_graph(7, 0.4, rng=2))
        service = service_for(db_a)
        query = parse_query("Ans(x, y) :- E(x, y)")
        service.submit(query, db_a, seed=1)
        service.submit(query, db_b, seed=1)
        # Mutations strand dead-fingerprint entries for db_a.
        db_a.add_fact("E", (90, 91))
        service.submit(query, db_a, seed=1)
        assert service.evict(db_a) == 2
        assert service.evict(db_a) == 0
        # db_b's entry survives and still hits.
        before = service.result_cache.stats().hits
        service.submit(query, db_b, seed=1)
        assert service.result_cache.stats().hits == before + 1


# ----------------------------------------------------------- workload plumbing
class TestStreamWorkload:
    def test_schedule_is_replayable_and_deterministic(self):
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=9))
        schedule_a = stream_schedule(60, database, 3, rng=5)
        schedule_b = stream_schedule(60, database, 3, rng=5)
        assert schedule_a == schedule_b
        # Deletes always name facts present at replay time.
        replay = database.copy()
        for event in schedule_a:
            if event.kind == "insert":
                replay.add_fact(event.relation, event.fact)
            elif event.kind == "delete":
                replay.remove_fact(event.relation, event.fact)

    def test_report_accounts_for_every_event(self):
        database = database_from_graph(erdos_renyi_graph(8, 0.3, rng=9))
        service = service_for(database)
        queries = [parse_query("Ans(x, y) :- E(x, y)")]
        schedule = stream_schedule(40, database, 1, rng=8)
        report, subscriptions = run_stream(
            service, queries, database, schedule, seed=3
        )
        assert report.num_events == 40
        assert report.inserts + report.deletes + report.reads == 40
        assert (
            report.refreshes + report.fresh_serves + report.stale_serves
            == report.reads
        )
        for subscription in subscriptions:
            subscription.close()
