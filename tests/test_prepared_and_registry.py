"""Tests for the PreparedQuery compilation layer and the unified
SchemeRegistry: registry dispatch must be bit-identical to direct library
calls under the same seed, alpha-renamed queries must share one prepared
cache entry (artifact identity + counters), and the satellite fixes
(greedy-treewidth warn instead of raise, per-width ``explain`` guards)."""

import warnings

import pytest

from repro.core import (
    REGISTRY,
    count_answers_exact,
    exact_count_answers_via_oracle,
    fpras_count_cq,
    fptras_count_dcq,
    fptras_count_ecq,
)
from repro.core.registry import default_registry
from repro.decomposition.f_width import EXACT_F_WIDTH_LIMIT
from repro.queries import parse_query
from repro.queries.builders import path_query
from repro.queries.prepared import (
    PreparedQuery,
    clear_prepared_cache,
    prepare,
    prepared_cache_stats,
)
from repro.relational.structure import Database
from repro.service import Planner, PlannerConfig
from repro.service.plan import QueryPlan
from repro.unions.karp_luby import approx_count_union

EPS, DELTA = 0.5, 0.2

CQ = "Ans(x) :- E(x, y), E(y, z)"
CQ_RENAMED = "Ans(a) :- E(a, b), E(b, c)"
DCQ = "Ans(x) :- E(x, y), E(y, z), x != z"
ECQ = "Ans(x) :- E(x, y), !F(x, y)"


@pytest.fixture
def database():
    return Database.from_relations(
        {
            "E": [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1), (2, 4)],
            "F": [(1, 3), (2, 4)],
        }
    )


# --------------------------------------------------------------- preparation
class TestPreparedQuery:
    def test_alpha_renamed_copies_share_one_cache_entry(self):
        clear_prepared_cache()
        before = prepared_cache_stats()
        first = prepare(parse_query(CQ))
        second = prepare(parse_query(CQ_RENAMED))
        after = prepared_cache_stats()
        # Artifact identity: one PreparedQuery object serves both shapes.
        assert first is second
        assert after.hits == before.hits + 1
        assert after.misses == before.misses + 1

    def test_widths_are_computed_once_and_then_hit(self):
        clear_prepared_cache()
        prepared = prepare(parse_query(CQ))
        renamed = prepare(parse_query(CQ_RENAMED))
        # Both handles hit the same memo: one compute, then hits only.
        assert prepared.width_profile() is renamed.width_profile()
        assert prepared.treewidth() == 1
        stats = prepared.artifact_stats()
        assert stats["width_profile"]["computes"] == 1
        assert stats["width_profile"]["hits"] >= 1
        assert stats["treewidth"]["computes"] == 1

    def test_prepare_is_idempotent_on_prepared_queries(self):
        prepared = prepare(parse_query(DCQ))
        assert prepare(prepared) is prepared

    def test_widths_match_the_direct_computations(self):
        from repro.decomposition.fractional import fractional_hypertreewidth
        from repro.decomposition.treewidth import exact_treewidth

        query = parse_query(DCQ)
        prepared = prepare(query)
        hypergraph = query.hypergraph()
        assert prepared.treewidth() == exact_treewidth(hypergraph)
        assert prepared.treewidth_is_exact()
        fhw, fhw_exact = fractional_hypertreewidth(hypergraph)
        assert prepared.fractional_hypertreewidth() == (fhw, fhw_exact)
        assert prepared.adaptive_width_upper() == pytest.approx(fhw)

    def test_translated_decomposition_is_valid_for_the_renamed_query(self):
        clear_prepared_cache()
        prepare(parse_query(CQ))  # representative: x/y/z variables
        renamed = parse_query(CQ_RENAMED)  # a/b/c variables
        prepared = prepare(renamed)
        nice = prepared.nice_decomposition_for(renamed)
        assert nice.is_nice()
        assert not nice.validation_errors(renamed.hypergraph())
        # The representative's own request shares the stored object.
        assert (
            prepared.nice_decomposition_for(prepared.query)
            is prepared.nice_decomposition()
        )

    def test_renaming_for_rejects_non_equivalent_queries(self):
        prepared = prepare(parse_query(CQ))
        with pytest.raises(ValueError, match="canonical form"):
            prepared.renaming_for(parse_query(DCQ))


# ----------------------------------------------------- registry differential
class TestRegistryMatchesDirectCalls:
    def test_exact(self, database):
        query = parse_query(CQ)
        result = REGISTRY.count("exact", query, database, engine="indexed")
        assert result.estimate == float(count_answers_exact(query, database))
        assert result.scheme == "exact"
        assert result.query_class == "CQ"

    def test_oracle_exact(self, database):
        query = parse_query(DCQ)
        result = REGISTRY.count("oracle_exact", query, database, rng=11)
        assert result.estimate == float(
            exact_count_answers_via_oracle(query, database, rng=11)
        )

    def test_fpras_cq(self, database):
        query = parse_query(CQ)
        result = REGISTRY.count(
            "fpras_cq", query, database, epsilon=EPS, delta=DELTA, rng=7
        )
        direct = fpras_count_cq(query, database, epsilon=EPS, delta=DELTA, rng=7)
        assert result.estimate == direct
        assert "fractional_hypertreewidth" in result.widths

    def test_fptras_dcq(self, database):
        query = parse_query(DCQ)
        result = REGISTRY.count(
            "fptras_dcq", query, database, epsilon=EPS, delta=DELTA, rng=7
        )
        direct = fptras_count_dcq(query, database, epsilon=EPS, delta=DELTA, rng=7)
        assert result.estimate == direct
        assert result.statistics is not None

    def test_fptras_ecq(self, database):
        query = parse_query(ECQ)
        result = REGISTRY.count(
            "fptras_ecq", query, database, epsilon=EPS, delta=DELTA, rng=7
        )
        direct = fptras_count_ecq(query, database, epsilon=EPS, delta=DELTA, rng=7)
        assert result.estimate == direct
        assert result.widths["treewidth"] == 1

    def test_union_karp_luby(self, database):
        queries = [parse_query(CQ), parse_query(DCQ)]
        result = REGISTRY.count_union(
            queries, database, epsilon=EPS, delta=DELTA, rng=13,
            exact_components=True,
        )
        direct = approx_count_union(
            queries, database, epsilon=EPS, delta=DELTA, rng=13,
            exact_components=True,
        )
        assert result.estimate == direct
        assert result.scheme == "union_karp_luby"

    def test_validation_rejects_unsound_pairings(self, database):
        with pytest.raises(ValueError, match="does not apply"):
            REGISTRY.count("fpras_cq", parse_query(DCQ), database)
        with pytest.raises(ValueError, match="unknown scheme"):
            REGISTRY.count("magic", parse_query(CQ), database)
        with pytest.raises(ValueError, match="count_union"):
            REGISTRY.count("union_karp_luby", parse_query(CQ), database)
        with pytest.raises(ValueError, match="not a union scheme"):
            REGISTRY.count_union([parse_query(CQ)], database, scheme="exact")

    def test_registries_are_isolated(self):
        registry = default_registry()
        registry.register("custom", lambda *a, **k: (0.0, {}, None, ()), (), "test")
        assert "custom" in registry.names()
        assert "custom" not in REGISTRY.names()


# ------------------------------------------------------------ satellite fixes
class TestGreedyTreewidthBoundWarnsNotRaises:
    def test_upper_bound_only_warns(self):
        # More variables than the exact-width limit, so the treewidth is only
        # a greedy upper bound; exceeding the declared bound must warn, not
        # reject (the bound proves nothing about the true treewidth).
        query = path_query(EXACT_F_WIDTH_LIMIT + 2)
        assert len(query.variables) > EXACT_F_WIDTH_LIMIT
        prepared = prepare(query)
        assert not prepared.treewidth_is_exact()
        database = Database.from_relations({"E": [(1, 2), (2, 1)]})
        with pytest.warns(UserWarning, match="treewidth upper bound"):
            estimate = fptras_count_ecq(
                query, database, 0.9, 0.4, rng=0,
                treewidth_bound=0, oracle_mode="direct",
            )
        assert estimate >= 0.0

    def test_exact_treewidth_still_raises(self):
        from repro.queries.builders import clique_query

        database = Database.from_graph_edges([(1, 2), (2, 3), (1, 3)])
        with pytest.raises(ValueError, match="exceeds the declared bound"):
            fptras_count_ecq(
                clique_query(4), database, EPS, DELTA, rng=0, treewidth_bound=1
            )


class TestExplainGuardsEachWidthIndependently:
    def _plan(self, **widths):
        base = dict(
            scheme="fptras_ecq",
            query_class="ECQ",
            engine="indexed",
            database_size=10,
            size_class="small",
            treewidth=None,
            fractional_hypertreewidth=None,
            adaptive_width_upper=None,
            arity=None,
            reference="Theorem 5",
            override="fptras_ecq",
            trace=("t",),
        )
        base.update(widths)
        return QueryPlan(**base)

    def test_partial_width_combinations_do_not_crash(self):
        assert "tw=2" in self._plan(treewidth=2).explain()
        text = self._plan(treewidth=2, arity=2).explain()
        assert "tw=2" in text and "arity=2" in text and "fhw=" not in text
        text = self._plan(fractional_hypertreewidth=1.5).explain()
        assert "fhw=1.50" in text and "tw=" not in text
        assert "widths:" not in self._plan().explain()

    def test_override_plans_compute_only_the_needed_widths(self, database):
        planner = Planner()
        ecq_plan = planner.plan(
            parse_query(ECQ), database, override="fptras_ecq"
        )
        assert ecq_plan.treewidth is not None
        assert ecq_plan.fractional_hypertreewidth is None
        ecq_plan.explain()  # must not crash with partial widths
        dcq_plan = planner.plan(
            parse_query(DCQ), database, override="fptras_dcq"
        )
        assert dcq_plan.fractional_hypertreewidth is not None
        assert dcq_plan.treewidth is None
        dcq_plan.explain()


# ------------------------------------------------- planner/scheme width share
class TestWidthsComputedOncePerProcess:
    def test_planner_and_scheme_share_one_width_computation(self, database):
        clear_prepared_cache()
        query = parse_query(DCQ)
        # Two independent planners (cold plan caches) + a direct scheme run:
        # the width profile must be computed exactly once.
        config = PlannerConfig(exact_size_threshold=0)
        Planner(config).plan(query, database)
        Planner(config).plan(query, database)
        fptras_count_dcq(query, database, EPS, DELTA, rng=1)
        prepared = prepare(query)
        stats = prepared.artifact_stats()
        assert stats["width_profile"]["computes"] == 1
        assert stats["fhw_decomposition"]["computes"] == 1

    def test_scheme_result_surfaces_widths_through_the_service(self, database):
        from repro.service import CountingService, ServiceConfig

        service = CountingService(database, ServiceConfig(executor="serial"))
        result = service.submit(parse_query(DCQ), seed=3, method="fptras_dcq")
        assert result.widths is not None
        assert result.widths["treewidth"] == result.plan.treewidth or (
            result.plan.treewidth is None
        )
        assert "adaptive_width_upper_bound" in result.widths
