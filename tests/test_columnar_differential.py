"""Differential tests for the vectorized columnar CSP engine.

``engine="columnar"`` is a pure performance change: every count, answer set,
enumeration order, and seeded approximate estimate must be bit-identical to
the indexed (and naive) engines.  These tests sweep seeded random CQ/DCQ/ECQ
workloads across all three engines, pin the seed-equality of the approximate
schemes, exercise the interned-universe encoder caches, and verify the
fallbacks: NumPy missing at construction time and int32 overflow at solve
time must silently produce the indexed engine's behaviour.
"""

from __future__ import annotations

import pytest

from repro.core import approx_count_answers
from repro.core.bag_solutions import bag_solutions
from repro.core.exact import (
    count_answers_exact,
    count_solutions_exact,
    enumerate_answers_exact,
)
from repro.core.fpras import fpras_count_cq
from repro.core.fptras import fptras_count_dcq, fptras_count_ecq
from repro.queries import parse_query
from repro.queries.builders import path_query, star_query
from repro.relational import CSPInstance, count_homomorphisms, enumerate_homomorphisms
from repro.relational import columnar
from repro.relational.structure import Database, Structure
from repro.resilience import FaultPlan, FaultRule, RetryPolicy
from repro.service import CountingService, CountRequest, ServiceConfig
from repro.service.plan import PlannerConfig
from repro.workloads import (
    database_from_graph,
    erdos_renyi_graph,
    random_database,
    random_tree_query,
)

pytestmark = pytest.mark.skipif(
    not columnar.columnar_available(), reason="NumPy not installed"
)

ENGINES = ("naive", "indexed", "columnar")


def _random_workloads():
    """Seeded (query, database) pairs covering CQs, DCQs and ECQs."""
    workloads = []
    for seed in range(6):
        query = random_tree_query(
            num_variables=4,
            num_free=2,
            num_disequalities=seed % 3,
            num_negations=seed % 2,
            rng=seed,
        )
        database = random_database(
            universe_size=6,
            relations={"E": 2, "F": 2},
            facts_per_relation=14,
            rng=seed + 100,
        )
        workloads.append((f"tree-seed{seed}", query, database))
    graph_db = database_from_graph(erdos_renyi_graph(8, 0.4, rng=3))
    workloads.append(("two-hop", path_query(2, free_endpoints_only=True), graph_db))
    workloads.append(("star3-dcq", star_query(3, with_disequalities=True), graph_db))
    return workloads


WORKLOADS = _random_workloads()
IDS = [name for name, _, _ in WORKLOADS]


# ------------------------------------------------------------- exact counting
@pytest.mark.parametrize("name,query,database", WORKLOADS, ids=IDS)
def test_columnar_counts_match_other_engines_and_bruteforce(name, query, database):
    brute = count_answers_exact(query, database, method="bruteforce")
    for engine in ENGINES:
        assert count_answers_exact(query, database, engine=engine) == brute
    assert count_solutions_exact(query, database, engine="columnar") == (
        count_solutions_exact(query, database, engine="indexed")
    )
    assert enumerate_answers_exact(query, database, engine="columnar") == (
        enumerate_answers_exact(query, database, engine="indexed")
    )


@pytest.mark.parametrize("name,query,database", WORKLOADS, ids=IDS)
def test_columnar_enumerates_solutions_in_indexed_order(name, query, database):
    from repro.core.exact import _solution_csp

    indexed = list(_solution_csp(query, database, engine="indexed").iter_solutions())
    columnar_run = list(
        _solution_csp(query, database, engine="columnar").iter_solutions()
    )
    assert columnar_run == indexed


def test_columnar_homomorphism_enumeration_order_matches():
    source = Structure.from_graph([(0, 1), (1, 2), (2, 3)])
    target = Structure.from_graph(erdos_renyi_graph(7, 0.5, rng=5).edges())
    indexed = list(enumerate_homomorphisms(source, target, engine="indexed"))
    vectorized = list(enumerate_homomorphisms(source, target, engine="columnar"))
    assert vectorized == indexed
    assert count_homomorphisms(source, target, engine="columnar") == len(indexed)


def test_columnar_propagation_reaches_the_indexed_fixpoint():
    for seed in range(8):
        query = random_tree_query(
            num_variables=5, num_free=2, num_disequalities=1, rng=seed
        )
        database = random_database(
            universe_size=5,
            relations={"E": 2, "F": 2},
            facts_per_relation=9,
            rng=seed + 50,
        )
        from repro.core.exact import _solution_csp

        indexed = _solution_csp(query, database, engine="indexed").propagate()
        vectorized = _solution_csp(query, database, engine="columnar").propagate()
        assert vectorized == indexed


# ----------------------------------------------- seeded approximate schemes
@pytest.mark.parametrize("name,query,database", WORKLOADS, ids=IDS)
def test_approximate_schemes_are_seed_identical_across_engines(
    name, query, database
):
    num_free = query.num_free()
    if num_free == 0:
        pytest.skip("approximate schemes need free variables")
    scheme = {
        "CQ": fpras_count_cq,
        "DCQ": fptras_count_dcq,
        "ECQ": fptras_count_ecq,
    }[query.query_class().value]
    runs = [
        scheme(query, database, 0.5, 0.2, rng=11, engine=engine)
        for engine in ("indexed", "columnar")
    ]
    assert runs[0] == runs[1]


def test_approx_count_answers_threads_engine_through_registry():
    database = database_from_graph(erdos_renyi_graph(8, 0.4, rng=3))
    query = parse_query("Ans(x) :- E(x, y), E(y, z)")
    for method in ("fpras", "exact"):
        indexed = approx_count_answers(
            query, database, epsilon=0.4, delta=0.1, seed=5, method=method,
            engine="indexed",
        )
        vectorized = approx_count_answers(
            query, database, epsilon=0.4, delta=0.1, seed=5, method=method,
            engine="columnar",
        )
        assert vectorized == indexed


# --------------------------------------------------------------- bag solutions
def test_bag_solutions_columnar_matches_python_join_pipeline():
    for seed in range(6):
        query = random_tree_query(num_variables=5, num_free=2, rng=seed)
        database = random_database(
            universe_size=6,
            relations={"E": 2, "F": 2},
            facts_per_relation=12,
            rng=seed + 30,
        )
        variables = sorted(query.variables)
        for bag in (set(variables[:2]), set(variables)):
            assert bag_solutions(query, database, bag, engine="columnar") == (
                bag_solutions(query, database, bag, engine="indexed")
            )


# ------------------------------------------------------------ encoder caching
class TestEncoderCaches:
    def test_universe_encoder_is_interned_and_version_keyed(self):
        database = Structure.from_graph([(1, 2), (2, 3)])
        encoder = database.universe_encoder()
        assert encoder is not None
        assert database.universe_encoder() is encoder
        assert encoder.values == database.canonical_universe()
        # Codes are positions in the repr-sorted universe.
        assert [encoder.code_of[v] for v in encoder.values] == list(
            range(len(encoder.values))
        )
        database.add_fact("E", (4, 5))  # grows the universe
        fresh = database.universe_encoder()
        assert fresh is not encoder
        assert 4 in fresh.code_of and 5 in fresh.code_of

    def test_columnar_relation_cache_invalidated_by_mutation(self):
        database = Structure.from_graph([(1, 2), (2, 3)])
        table = database.columnar_relation("E")
        assert table is not None
        assert database.columnar_relation("E") is table
        assert table.num_rows == len(database.relation("E"))
        database.add_fact("E", (3, 1))
        rebuilt = database.columnar_relation("E")
        assert rebuilt is not table
        assert rebuilt.num_rows == table.num_rows + 1

    def test_copy_carries_columnar_caches_until_mutation(self):
        database = Structure.from_graph([(1, 2), (2, 3)])
        encoder = database.universe_encoder()
        table = database.columnar_relation("E")
        duplicate = database.copy()
        assert duplicate.universe_encoder() is encoder
        assert duplicate.columnar_relation("E") is table
        duplicate.add_fact("E", (9, 9))
        assert duplicate.columnar_relation("E") is not table
        # The original's caches are untouched by the copy's mutation.
        assert database.columnar_relation("E") is table

    def test_unknown_relation_raises(self):
        database = Structure.from_graph([(1, 2)])
        with pytest.raises(KeyError):
            database.columnar_relation("nope")


# ------------------------------------------------------------------ fallbacks
class TestFallbacks:
    def test_missing_numpy_resolves_to_indexed_engine(self, monkeypatch):
        monkeypatch.setattr(columnar, "HAS_NUMPY", False)
        assert not columnar.columnar_available()
        csp = CSPInstance({"x": {1, 2}}, [], engine="columnar")
        assert csp.engine == "indexed"
        database = Structure.from_graph([(1, 2), (2, 3)])
        query = parse_query("Ans(x) :- E(x, y)")
        assert count_answers_exact(query, database, engine="columnar") == 3

    def test_missing_numpy_disables_structure_encoders(self, monkeypatch):
        monkeypatch.setattr(columnar, "HAS_NUMPY", False)
        database = Structure.from_graph([(1, 2)])
        assert database.universe_encoder() is None
        assert database.columnar_relation("E") is None

    def test_int32_overflow_falls_back_to_indexed_results(self, monkeypatch):
        # A 2-value limit forces every encoder build to refuse, so the
        # columnar context can never be built and the engine must serve
        # every call through the indexed paths.
        monkeypatch.setattr(columnar, "_INT32_LIMIT", 2)
        database = database_from_graph(erdos_renyi_graph(7, 0.5, rng=2))
        query = parse_query("Ans(x) :- E(x, y), E(y, z)")
        assert count_answers_exact(query, database, engine="columnar") == (
            count_answers_exact(query, database, engine="indexed")
        )

    def test_build_encoder_refuses_oversized_universes(self, monkeypatch):
        monkeypatch.setattr(columnar, "_INT32_LIMIT", 3)
        assert columnar.build_encoder((1, 2, 3, 4)) is None
        assert columnar.build_encoder((1, 2, 3)) is not None

    def test_foreign_domain_values_fall_back_silently(self):
        # Domain values outside the interned universe cannot be encoded; the
        # instance must still answer through the indexed paths.
        database = Structure.from_graph([(1, 2), (2, 3)])
        from repro.relational import Constraint

        constraint = Constraint.trusted(
            ("x", "y"),
            index=database.relation_index("E"),
            table=database.columnar_relation("E"),
        )
        domains = {"x": {1, 2, "ghost"}, "y": {2, 3}}
        vectorized = CSPInstance(dict(domains), [constraint], engine="columnar")
        indexed = CSPInstance(dict(domains), [constraint], engine="indexed")
        assert list(vectorized.iter_solutions()) == list(indexed.iter_solutions())


# ------------------------------------------------------- service + resilience
class TestServiceIntegration:
    @pytest.fixture
    def database(self):
        return Database.from_relations(
            {
                "E": [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1)],
                "F": [(1, 3), (2, 4)],
            }
        )

    def test_faulted_columnar_batch_is_bit_identical_to_clean_indexed(
        self, database
    ):
        queries = [
            parse_query("Ans(x) :- E(x, y), E(y, z)"),
            parse_query("Ans(x) :- E(x, y), E(y, z), x != z"),
            parse_query("Ans(x) :- E(x, y), !F(x, y)"),
        ]
        clean = CountingService(database, ServiceConfig(executor="serial"))
        clean_report = clean.count_batch(queries, seed=9)
        chaotic = CountingService(
            database, ServiceConfig(executor="serial", engine="columnar")
        )
        chaos_report = chaotic.count_batch(
            queries,
            seed=9,
            fault_plan=FaultPlan(
                seed=7, rules=(FaultRule(site="executor.task", kind="crash", times=1),)
            ),
            retry=RetryPolicy(max_attempts=3),
        )
        assert chaos_report.estimates() == clean_report.estimates()
        assert chaos_report.retries >= 1

    def test_planner_upgrades_large_databases_to_columnar(self, database):
        query = parse_query("Ans(x) :- E(x, y), E(y, z)")
        upgrading = CountingService(
            database,
            ServiceConfig(planner=PlannerConfig(columnar_size_threshold=1)),
        )
        plan = upgrading.plan(query)
        assert plan.engine == "columnar"
        assert any("columnar" in step for step in plan.trace)
        # Below the threshold (or with the upgrade disabled) the default
        # engine stands.
        assert (
            CountingService(
                database,
                ServiceConfig(planner=PlannerConfig(columnar_size_threshold=10**9)),
            )
            .plan(query)
            .engine
            == "indexed"
        )
        assert (
            CountingService(
                database,
                ServiceConfig(planner=PlannerConfig(columnar_size_threshold=None)),
            )
            .plan(query)
            .engine
            == "indexed"
        )
        # An explicit non-default engine is never silently upgraded.
        assert (
            CountingService(
                database,
                ServiceConfig(
                    engine="naive",
                    planner=PlannerConfig(columnar_size_threshold=1),
                ),
            )
            .plan(query)
            .engine
            == "naive"
        )

    def test_latency_metric_and_profiles_carry_engine_label(self, database):
        service = CountingService(
            database, ServiceConfig(executor="serial", engine="columnar")
        )
        service.submit(parse_query("Ans(x) :- E(x, y)"), seed=1)
        stats = service.stats()
        assert stats["schemes"]["exact"]["engine"] == "columnar"
        assert stats["profiles"]["engines"] == ["columnar"]
        text = service.metrics.render_prometheus()
        assert 'engine="columnar"' in text

    def test_profile_store_splits_schemes_by_engine(self):
        from repro.obs import ProfileStore

        store = ProfileStore()
        store.record("k", 100, "exact", 0.01, engine="indexed")
        store.record("k", 100, "exact", 0.002, engine="columnar")
        summary = store.summary("k", 100)
        assert set(summary["schemes"]) == {"exact@indexed", "exact@columnar"}
        restored = ProfileStore.from_json(store.to_json())
        assert restored.summary("k", 100) == summary

    def test_profile_store_reads_version1_snapshots_as_indexed(self):
        import json

        from repro.obs import ProfileStore

        store = ProfileStore()
        store.record("k", 100, "exact", 0.01)
        payload = json.loads(store.to_json())
        for row in payload["profiles"]:
            del row["engine"]
        payload["version"] = 1
        restored = ProfileStore.from_json(json.dumps(payload))
        assert restored.get("k", 100, "exact", engine="indexed") is not None
