"""Smoke tests for the example scripts.

The fast examples are executed end to end (their ``main`` functions); the
slower, purely illustrative ones are only checked for importability so the
test suite stays quick.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_exists():
    assert EXAMPLES_DIR.is_dir()
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart_runs(capsys):
    module = _load("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "exact count:" in output
    assert "approximate:" in output


def test_dichotomy_explorer_runs(capsys):
    module = _load("dichotomy_explorer")
    module.main()
    output = capsys.readouterr().out
    assert "Hamiltonian-path DCQ" in output
    assert "FPTRAS" in output and "FPRAS" in output


@pytest.mark.parametrize(
    "name",
    ["social_network_analytics", "locally_injective_homomorphisms", "sampling_answers"],
)
def test_slow_examples_are_importable(name):
    """The heavier scenario scripts must at least import cleanly and expose a
    ``main`` entry point (they are exercised manually / by the benches)."""
    module = _load(name)
    assert callable(getattr(module, "main", None))
