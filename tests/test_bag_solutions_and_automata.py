"""Tests for bag solutions (Lemma 48), tree automata (Definitions 49/50) and
the Lemma-52 reduction used by the Theorem-16 FPRAS."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bag_solutions import (
    are_consistent,
    assignment_dict,
    assignment_key,
    bag_solutions,
    compose,
    project,
    project_solutions,
    solutions_consistent_with,
)
from repro.core.fpras import build_tree_automaton
from repro.core.tree_automaton import RootedTree, TreeAutomaton, _enumerate_trees
from repro.core import count_answers_exact
from repro.queries import parse_query
from repro.queries.builders import path_query, star_query
from repro.relational import Database
from repro.workloads import database_from_graph, erdos_renyi_graph


class TestAssignmentHelpers:
    def test_key_round_trip(self):
        assignment = {"x": 1, "y": 2}
        assert assignment_dict(assignment_key(assignment)) == assignment

    def test_consistency(self):
        assert are_consistent({"x": 1}, {"y": 2})
        assert are_consistent({"x": 1, "y": 2}, {"y": 2})
        assert not are_consistent({"x": 1}, {"x": 2})

    def test_compose(self):
        assert compose({"x": 1}, {"y": 2}) == {"x": 1, "y": 2}
        with pytest.raises(ValueError):
            compose({"x": 1}, {"x": 2})

    def test_project(self):
        assert project({"x": 1, "y": 2}, ["y", "z"]) == {"y": 2}


class TestBagSolutions:
    def test_rejects_non_cq(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        with pytest.raises(ValueError):
            bag_solutions(query, triangle_database, {"x"})

    def test_empty_bag(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        solutions = bag_solutions(query, triangle_database, set())
        assert solutions == {assignment_key({})}

    def test_empty_bag_with_empty_relation(self):
        from repro.relational import RelationSymbol, Signature

        database = Database(signature=Signature([RelationSymbol("E", 2)]), universe=[1])
        query = parse_query("Ans(x, y) :- E(x, y)")
        assert bag_solutions(query, database, set()) == set()

    def test_definition_47_reference(self, small_database):
        """Sol(phi, D, B) matches a brute-force evaluation of Definition 47."""
        query = parse_query("Ans(x) :- E(x, y), E(y, z)")
        bag = {"x", "y"}
        computed = bag_solutions(query, small_database, bag)

        universe = sorted(small_database.universe, key=repr)
        expected = set()
        import itertools

        for values in itertools.product(universe, repeat=len(bag)):
            alpha = dict(zip(sorted(bag), values))
            ok = True
            for atom in query.atoms:
                exists = False
                for fact in small_database.relation(atom.relation):
                    consistent = True
                    witness = {}
                    for position, variable in enumerate(atom.args):
                        value = fact[position]
                        if variable in alpha and alpha[variable] != value:
                            consistent = False
                            break
                        if variable in witness and witness[variable] != value:
                            consistent = False
                            break
                        witness[variable] = value
                    if consistent:
                        exists = True
                        break
                if not exists:
                    ok = False
                    break
            if ok:
                expected.add(assignment_key(alpha))
        assert computed == expected

    def test_full_bag_equals_solutions(self, triangle_database):
        from repro.core import count_solutions_exact

        query = parse_query("Ans(x, y) :- E(x, y), E(y, x)")
        full = bag_solutions(query, triangle_database, query.variables)
        assert len(full) == count_solutions_exact(query, triangle_database)

    def test_project_solutions(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        solutions = bag_solutions(query, triangle_database, {"x", "y"})
        projected = project_solutions(solutions, ["x"])
        assert projected == {assignment_key({"x": v}) for v in triangle_database.universe}

    def test_solutions_consistent_with(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        solutions = bag_solutions(query, triangle_database, {"x", "y"})
        anchored = solutions_consistent_with(solutions, assignment_key({"x": 1}))
        assert all(dict(key)["x"] == 1 for key in anchored)
        assert len(anchored) == 2  # 1-2 and 1-3 in the symmetric triangle

    def test_unknown_bag_variable(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        with pytest.raises(ValueError):
            bag_solutions(query, triangle_database, {"nope"})


class TestTreeAutomaton:
    def _simple_automaton(self):
        """Accepts the single-node tree labelled "a" or a root labelled "a"
        with one child labelled "b"."""
        return TreeAutomaton(
            states=["s0", "s1"],
            alphabet=["a", "b"],
            transitions={
                ("s0", "a"): [(), ("s1",)],
                ("s1", "b"): [()],
            },
            initial_state="s0",
        )

    def test_accepts_single_node(self):
        automaton = self._simple_automaton()
        tree = RootedTree(root=0, children={0: ()})
        assert automaton.accepts(tree, {0: "a"})
        assert not automaton.accepts(tree, {0: "b"})

    def test_accepts_two_nodes(self):
        automaton = self._simple_automaton()
        tree = RootedTree(root=0, children={0: (1,), 1: ()})
        assert automaton.accepts(tree, {0: "a", 1: "b"})
        assert not automaton.accepts(tree, {0: "a", 1: "a"})

    def test_count_labelings_bruteforce(self):
        automaton = self._simple_automaton()
        tree = RootedTree(root=0, children={0: (1,), 1: ()})
        assert automaton.count_labelings_bruteforce(tree) == 1

    def test_count_labelings_estimator_matches_bruteforce(self):
        automaton = self._simple_automaton()
        tree = RootedTree(root=0, children={0: (1,), 1: ()})
        estimate = automaton.count_labelings(tree, epsilon=0.1, delta=0.1, rng=0)
        assert estimate == pytest.approx(1.0)

    def test_nslice_bruteforce(self):
        automaton = self._simple_automaton()
        # Size-1 slice: only the single "a" node is accepted.
        assert automaton.count_nslice_bruteforce(1) == 1
        # Size-2 slice: only root "a" with child "b".
        assert automaton.count_nslice_bruteforce(2) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TreeAutomaton(["s"], ["a"], {}, initial_state="missing")
        with pytest.raises(ValueError):
            TreeAutomaton(["s"], ["a"], {("s", "b"): [()]}, initial_state="s")
        with pytest.raises(ValueError):
            TreeAutomaton(["s"], ["a"], {("s", "a"): [("s", "s", "s")]}, initial_state="s")

    def test_more_than_two_children_rejected(self):
        with pytest.raises(ValueError):
            RootedTree(root=0, children={0: (1, 2, 3), 1: (), 2: (), 3: ()})

    def test_enumerate_trees_counts(self):
        # Number of "at most binary, children ordered" trees on n nodes:
        # n=1: 1, n=2: 1, n=3: 2 (chain or two children).
        assert len(list(_enumerate_trees(1))) == 1
        assert len(list(_enumerate_trees(2))) == 1
        assert len(list(_enumerate_trees(3))) == 2

    def test_nondeterministic_union_counting(self):
        """An automaton whose two transitions accept overlapping languages:
        the estimator must not double-count."""
        automaton = TreeAutomaton(
            states=["s0", "a1", "a2"],
            alphabet=["r", "x", "y"],
            transitions={
                ("s0", "r"): [("a1",), ("a2",)],
                # a1 accepts {x, y}; a2 accepts {y}.  Union has size 2.
                ("a1", "x"): [()],
                ("a1", "y"): [()],
                ("a2", "y"): [()],
            },
            initial_state="s0",
        )
        tree = RootedTree(root=0, children={0: (1,), 1: ()})
        assert automaton.count_labelings_bruteforce(tree) == 2
        estimate = automaton.count_labelings(tree, epsilon=0.1, delta=0.1, rng=1)
        assert abs(estimate - 2.0) <= 0.5

    def test_sample_labeling(self):
        automaton = self._simple_automaton()
        tree = RootedTree(root=0, children={0: (1,), 1: ()})
        labeling = automaton.sample_labeling(tree, rng=2)
        assert labeling == {0: "a", 1: "b"}

    def test_sample_labeling_empty_language(self):
        automaton = self._simple_automaton()
        tree = RootedTree(root=0, children={0: (1, 2), 1: (), 2: ()})
        assert automaton.sample_labeling(tree, rng=3) is None


class TestLemma52Reduction:
    def test_bijection_with_answers(self, small_database):
        """|L(A)| over the fixed decomposition tree equals |Ans(phi, D)| —
        verified through the estimator on small instances."""
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y)")
        reduction = build_tree_automaton(query, small_database)
        truth = count_answers_exact(query, small_database)
        if truth == 0:
            assert reduction.empty_language()
            return
        estimate = reduction.automaton.count_labelings(
            reduction.tree,
            epsilon=0.2,
            delta=0.1,
            rng=0,
            disjoint_union_hints=reduction.disjoint_union_hint,
        )
        assert abs(estimate - truth) <= max(0.4 * truth, 1.0)

    def test_empty_language_detected_by_estimator(self):
        """No (x, y) pair has both edge directions, so there are no answers;
        Sol(phi, D, ∅) is non-empty (each atom has a tuple in isolation), so
        the emptiness is detected by the estimator, not the root check."""
        database = Database.from_relations({"E": [(1, 2)]}, universe=[1, 2])
        query = parse_query("Ans(x) :- E(x, y), E(y, x)")
        reduction = build_tree_automaton(query, database)
        assert not reduction.empty_language()
        estimate = reduction.automaton.count_labelings(
            reduction.tree, epsilon=0.3, delta=0.2, rng=0,
            disjoint_union_hints=reduction.disjoint_union_hint,
        )
        assert estimate == 0.0

    def test_empty_language_root_check(self):
        """An empty relation makes Sol(phi, D, ∅) itself empty."""
        from repro.relational import RelationSymbol, Signature

        database = Database(signature=Signature([RelationSymbol("E", 2)]), universe=[1, 2])
        query = parse_query("Ans(x) :- E(x, y)")
        reduction = build_tree_automaton(query, database)
        assert reduction.empty_language()

    def test_rejects_non_cq(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y), x != y")
        with pytest.raises(ValueError):
            build_tree_automaton(query, triangle_database)

    def test_accepted_labelings_correspond_to_answers(self, triangle_database):
        """Sample a labelling from the automaton and check that composing its
        labels yields an actual answer (the forward direction of Lemma 52)."""
        query = star_query(2)  # 2 leaves, quantified centre
        reduction = build_tree_automaton(query, triangle_database)
        assert not reduction.empty_language()
        labeling = reduction.automaton.sample_labeling(
            reduction.tree, rng=1, disjoint_union_hints=reduction.disjoint_union_hint
        )
        assert labeling is not None
        # Each label is (node, projected assignment); compose them.
        assignment = {}
        for node, label in labeling.items():
            _, beta = label
            for variable, value in beta:
                assert assignment.get(variable, value) == value
                assignment[variable] = value
        answer = tuple(assignment[v] for v in query.free_variables)
        assert query.is_answer(answer, triangle_database)

    def test_states_and_labels_counts(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        reduction = build_tree_automaton(query, triangle_database)
        assert len(reduction.automaton.states) >= 1
        assert reduction.tree.size() == reduction.decomposition.num_nodes()
