"""Tests for the application modules: locally injective homomorphisms
(Corollary 6), the Hamiltonian-path construction (Observation 10) and the
footnote-4 star queries."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications import (
    count_hamiltonian_paths_dp,
    count_locally_injective_homomorphisms_approx,
    count_locally_injective_homomorphisms_exact,
    count_star_answers_centre_free_closed_form,
    hamiltonian_instance,
    is_locally_injective_homomorphism,
    lihom_query_and_database,
    star_instance,
)
from repro.applications.locally_injective import common_neighbour_pairs
from repro.core import count_answers_exact
from repro.hypergraph import Hypergraph
from repro.queries.builders import star_query
from repro.workloads import erdos_renyi_graph


class TestLocallyInjective:
    def test_common_neighbour_pairs_path(self):
        graph = nx.path_graph(3)  # 0 - 1 - 2; 0 and 2 share neighbour 1
        assert common_neighbour_pairs(graph) == [(0, 2)]

    def test_encoding_answers_equal_lihoms(self):
        """The one-to-one correspondence claimed in the paper: answers of the
        ECQ encoding = locally injective homomorphisms."""
        pattern = nx.path_graph(3)
        host = erdos_renyi_graph(6, 0.5, rng=0)
        query, database = lihom_query_and_database(pattern, host)
        assert count_answers_exact(query, database) == (
            count_locally_injective_homomorphisms_exact(pattern, host)
        )

    def test_star_pattern_encoding(self):
        pattern = nx.star_graph(3)  # centre 0, leaves 1..3
        host = erdos_renyi_graph(7, 0.4, rng=1)
        query, database = lihom_query_and_database(pattern, host)
        assert count_answers_exact(query, database) == (
            count_locally_injective_homomorphisms_exact(pattern, host)
        )

    def test_definition_check(self):
        pattern = nx.star_graph(2)
        host = nx.complete_graph(3)
        good = {0: 0, 1: 1, 2: 2}
        bad = {0: 0, 1: 1, 2: 1}  # two leaves map to the same neighbour
        assert is_locally_injective_homomorphism(good, pattern, host)
        assert not is_locally_injective_homomorphism(bad, pattern, host)

    def test_corollary_6_fptras(self):
        pattern = nx.path_graph(3)
        host = erdos_renyi_graph(8, 0.4, rng=2)
        truth = count_locally_injective_homomorphisms_exact(pattern, host)
        estimate = count_locally_injective_homomorphisms_approx(
            pattern, host, epsilon=0.3, delta=0.2, rng=3
        )
        assert abs(estimate - truth) <= max(0.45 * truth, 1.0)

    def test_query_treewidth_matches_pattern(self):
        from repro.decomposition import exact_treewidth

        pattern = nx.cycle_graph(4)
        host = nx.complete_graph(4)
        query, _ = lihom_query_and_database(pattern, host)
        assert exact_treewidth(query.hypergraph()) == exact_treewidth(
            Hypergraph.from_graph(pattern)
        )

    def test_rejects_edgeless_or_isolated_patterns(self):
        host = nx.complete_graph(3)
        with pytest.raises(ValueError):
            lihom_query_and_database(nx.empty_graph(3), host)
        pattern = nx.path_graph(2)
        pattern.add_node(99)
        with pytest.raises(ValueError):
            lihom_query_and_database(pattern, host)


class TestHamiltonian:
    def test_dp_on_path_graph(self):
        graph = nx.path_graph(4)
        # A path graph has exactly one Hamiltonian path, counted in both
        # directions by the DP.
        assert count_hamiltonian_paths_dp(graph) == 2

    def test_dp_on_complete_graph(self):
        graph = nx.complete_graph(4)
        # K4 has 4! / 1 = 24 directed Hamiltonian paths.
        assert count_hamiltonian_paths_dp(graph) == 24

    def test_dp_on_disconnected_graph(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert count_hamiltonian_paths_dp(graph) == 0

    def test_observation_10_encoding(self):
        """Answers of the Observation-10 DCQ are exactly the directed
        Hamiltonian paths."""
        graph = erdos_renyi_graph(5, 0.6, rng=4)
        query, database = hamiltonian_instance(graph)
        assert count_answers_exact(query, database) == count_hamiltonian_paths_dp(graph)

    def test_query_treewidth_is_one(self):
        from repro.decomposition import exact_treewidth

        graph = nx.complete_graph(4)
        query, _ = hamiltonian_instance(graph)
        assert exact_treewidth(query.hypergraph()) == 1
        assert query.arity() == 2

    def test_too_small_graph_rejected(self):
        with pytest.raises(ValueError):
            hamiltonian_instance(nx.path_graph(1))


class TestStarQueries:
    def test_closed_form_matches_exact_count(self):
        graph = erdos_renyi_graph(6, 0.5, rng=5)
        k = 2
        query, database = star_instance(graph, k, centre_free=True)
        assert count_answers_exact(query, database) == (
            count_star_answers_centre_free_closed_form(graph, k)
        )

    def test_quantified_centre_is_at_most_centre_free(self):
        """Projecting away the centre can only merge answers."""
        graph = erdos_renyi_graph(6, 0.5, rng=6)
        k = 2
        quantified, database = star_instance(graph, k, centre_free=False)
        free, _ = star_instance(graph, k, centre_free=True)
        assert count_answers_exact(quantified, database) <= count_answers_exact(
            free, database
        )

    def test_disequalities_reduce_count(self):
        graph = erdos_renyi_graph(6, 0.6, rng=7)
        plain, database = star_instance(graph, 2, with_disequalities=False)
        distinct, _ = star_instance(graph, 2, with_disequalities=True)
        assert count_answers_exact(distinct, database) <= count_answers_exact(
            plain, database
        )

    def test_closed_form_validation(self):
        with pytest.raises(ValueError):
            count_star_answers_centre_free_closed_form(nx.path_graph(3), 0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_hamiltonian_encoding_random_graphs(seed):
    graph = erdos_renyi_graph(5, 0.5, rng=seed)
    query, database = hamiltonian_instance(graph)
    assert count_answers_exact(query, database) == count_hamiltonian_paths_dp(graph)
