"""Tests for `repro.resilience`: deterministic fault injection, retries,
deadlines, circuit breakers — and the package-wide differential guarantee
that injected faults never change an estimate.

The differential tests are the heart: every scheme (exact, fpras_cq,
fptras_dcq, fptras_ecq) run through the service with crashes injected into
its tasks must return estimates bit-identical to a fault-free run under the
same seeds, across every executor back-end and shard count."""

import time

import pytest

from repro.queries import parse_query
from repro.relational.structure import Database
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedCrash,
    InjectedError,
    InjectedTimeout,
    RetriesExhausted,
    RetryPolicy,
    run_with_retry,
    uniform_plan,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service import CountingService, CountRequest, ServiceConfig


@pytest.fixture
def database():
    return Database.from_relations(
        {
            "E": [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1)],
            "F": [(1, 3), (2, 4)],
        }
    )


CQ = "Ans(x) :- E(x, y), E(y, z)"
DCQ = "Ans(x) :- E(x, y), E(y, z), x != z"
ECQ = "Ans(x) :- E(x, y), !F(x, y)"

#: A plan crashing every executor.task once: absorbed by one retry each.
CRASH_ONCE = FaultPlan(
    seed=7, rules=(FaultRule(site="executor.task", kind="crash", times=1),)
)
RETRY = RetryPolicy(max_attempts=3)


# ---------------------------------------------------------------- fault plans
class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultRule(site="nope")
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultRule(site="executor.task", kind="explode")
        with pytest.raises(FaultPlanError, match="rate"):
            FaultRule(site="executor.task", rate=1.5)
        with pytest.raises(FaultPlanError, match="times"):
            FaultRule(site="executor.task", times=0)
        with pytest.raises(FaultPlanError, match="latency"):
            FaultRule(site="executor.task", latency_seconds=-1)

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            rules=(
                FaultRule(site="shard.count", kind="error", rate=0.5, times=2, match=(0,)),
                FaultRule(site="stream.refresh", kind="latency", latency_seconds=0.01),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_bad_configs(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="needs an integer 'seed'"):
            FaultPlan.from_json('{"rules": []}')
        with pytest.raises(FaultPlanError, match="unknown fault rule field"):
            FaultPlan.from_json('{"seed": 1, "rules": [{"site": "cache.get", "x": 1}]}')
        with pytest.raises(FaultPlanError, match="unknown fault plan field"):
            FaultPlan.from_json('{"seed": 1, "extra": true}')

    def test_decide_is_pure_and_attempt_bounded(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(site="executor.task", times=2),))
        # Same verdict on every evaluation (worker processes must agree).
        verdicts = [plan.decide("executor.task", (4,), 0) for _ in range(3)]
        assert all(v is verdicts[0] for v in verdicts)
        # Faults attempts 0..times-1, then succeeds.
        assert plan.decide("executor.task", (4,), 1) is not None
        assert plan.decide("executor.task", (4,), 2) is None
        # Other sites untouched.
        assert plan.decide("shard.count", (4,), 0) is None

    def test_rate_selects_a_deterministic_subset(self):
        plan = uniform_plan(seed=11, rate=0.5, sites=("executor.task",))
        selected = {
            key for key in range(200) if plan.decide("executor.task", (key,), 0)
        }
        assert 0 < len(selected) < 200  # neither none nor all
        again = {
            key for key in range(200) if plan.decide("executor.task", (key,), 0)
        }
        assert selected == again

    def test_match_prefix_targets_keys(self):
        rule = FaultRule(site="shard.count", match=(1,))
        assert rule.matches_key((1, 0)) and rule.matches_key((1, 5))
        assert not rule.matches_key((0, 1))

    def test_apply_raises_the_matching_fault(self):
        def plan_for(kind):
            return FaultPlan(
                seed=1,
                rules=(
                    FaultRule(site="executor.task", kind=kind, latency_seconds=0.001),
                ),
            )

        with pytest.raises(InjectedCrash):
            plan_for("crash").apply("executor.task", (0,), 0)
        with pytest.raises(InjectedError):
            plan_for("error").apply("executor.task", (0,), 0)
        with pytest.raises(InjectedTimeout):
            plan_for("hang").apply("executor.task", (0,), 0, sleeper=lambda _: None)
        note = plan_for("latency").apply(
            "executor.task", (0,), 0, sleeper=lambda _: None
        )
        assert "latency" in note

    def test_hang_stall_is_capped_by_the_timeout_hint(self):
        plan = FaultPlan(
            seed=1,
            rules=(FaultRule(site="executor.task", kind="hang", latency_seconds=60.0),),
        )
        slept = []
        with pytest.raises(InjectedTimeout):
            plan.apply("executor.task", (0,), 0, timeout_hint=0.01, sleeper=slept.append)
        assert slept == [0.01]


# -------------------------------------------------------------------- retries
class TestRetry:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0)

    def test_backoff_is_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, backoff_factor=2.0, max_delay_seconds=0.35,
            jitter=0.5,
        )
        delays = [policy.backoff_delay(a, "executor.task", (3,)) for a in range(4)]
        assert delays == [
            policy.backoff_delay(a, "executor.task", (3,)) for a in range(4)
        ]
        assert all(d <= 0.35 for d in delays)
        # A different key jitters differently.
        assert policy.backoff_delay(0, "executor.task", (4,)) != delays[0]

    def test_transient_fault_is_absorbed_and_traced(self):
        plan = FaultPlan(seed=7, rules=(FaultRule(site="executor.task", times=2),))
        value, trace = run_with_retry(
            lambda: 42,
            sites=(("executor.task", (0,)),),
            policy=RetryPolicy(max_attempts=3),
            plan=plan,
        )
        assert value == 42
        assert trace.attempts == 3 and trace.retried
        assert sum("InjectedCrash" in note for note in trace.notes) == 2

    def test_exhaustion_raises_with_provenance(self):
        plan = FaultPlan(seed=7, rules=(FaultRule(site="executor.task", times=99),))
        with pytest.raises(RetriesExhausted) as info:
            run_with_retry(
                lambda: 42,
                sites=(("executor.task", (0,)),),
                policy=RetryPolicy(max_attempts=2),
                plan=plan,
            )
        assert info.value.attempts == 2
        assert isinstance(info.value.last, InjectedCrash)

    def test_genuine_errors_are_not_retried(self):
        calls = []

        def operation():
            calls.append(1)
            raise KeyError("real bug")

        with pytest.raises(KeyError):
            run_with_retry(
                operation,
                sites=(("executor.task", (0,)),),
                policy=RetryPolicy(max_attempts=5),
                plan=CRASH_ONCE,
            )
        assert len(calls) == 1

    def test_no_policy_means_single_attempt_without_a_plan(self):
        with pytest.raises(RetriesExhausted):
            run_with_retry(
                lambda: (_ for _ in ()).throw(InjectedCrash("executor.task", (0,), 0, "crash")),
                sites=(("executor.task", (0,)),),
            )

    def test_expired_deadline_refuses_the_next_attempt(self):
        deadline = Deadline(expires_at=time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceeded):
            run_with_retry(
                lambda: 42, sites=(("executor.task", (0,)),), deadline=deadline
            )

    def test_deadline_after_validates(self):
        assert Deadline.after(None) is None
        with pytest.raises(ValueError):
            Deadline.after(0)
        assert Deadline.after(60.0).remaining() > 59.0


# ------------------------------------------------------------------- breakers
class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens_after_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=10.0, clock=lambda: now[0]
        )
        assert breaker.state("process") == CLOSED
        assert breaker.record_failure("process") is False
        assert breaker.record_failure("process") is True
        assert breaker.state("process") == OPEN
        now[0] = 11.0
        assert breaker.state("process") == HALF_OPEN
        # A failed half-open probe re-opens (single failure suffices).
        assert breaker.record_failure("process") is True
        assert breaker.state("process") == OPEN
        now[0] = 22.0
        breaker.record_success("process")
        assert breaker.state("process") == CLOSED

    def test_plan_modes_skips_open_rungs_but_keeps_the_floor(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=10.0, clock=lambda: now[0]
        )
        assert breaker.plan_modes("process") == ("process", "thread", "serial")
        assert breaker.plan_modes("thread") == ("thread", "serial")
        breaker.record_failure("process")
        assert breaker.plan_modes("process") == ("thread", "serial")
        breaker.record_failure("thread")
        # serial is the floor: never skipped even if everything else is open.
        assert breaker.plan_modes("process") == ("serial",)
        now[0] = 11.0  # cool-down over: half-open rungs get their probe
        assert breaker.plan_modes("process") == ("process", "thread", "serial")

    def test_should_warn_fires_once_per_token(self):
        breaker = CircuitBreaker()
        assert breaker.should_warn("executor.process")
        assert not breaker.should_warn("executor.process")
        assert breaker.should_warn("executor.thread")

    def test_stats_reports_every_touched_rung(self):
        breaker = CircuitBreaker()
        breaker.record_failure("process")
        breaker.record_success("thread")
        stats = breaker.stats()
        assert stats["process"]["total_failures"] == 1
        assert stats["thread"]["total_successes"] == 1


# --------------------------------------------------- differential: bit-identity
class TestFaultsNeverChangeEstimates:
    """The acceptance bar: crashes injected into up to one worker per batch
    (and one shard per query) leave every estimate bit-identical."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_batch_estimates_survive_task_crashes(self, database, executor):
        queries = [parse_query(CQ), parse_query(DCQ), parse_query(ECQ)]
        clean = CountingService(database, ServiceConfig(executor="serial"))
        clean_report = clean.count_batch(queries, seed=9)
        chaotic = CountingService(database, ServiceConfig(executor=executor))
        chaos_report = chaotic.count_batch(
            queries, seed=9, fault_plan=CRASH_ONCE, retry=RETRY
        )
        assert chaos_report.estimates() == clean_report.estimates()
        assert chaos_report.retries >= len(queries)
        assert len(chaos_report.degradations) >= len(queries)
        for result in chaos_report.results:
            assert any("InjectedCrash" in note for note in result.degradations)

    @pytest.mark.parametrize("scheme", ["fpras_cq", "fptras_dcq", "fptras_ecq"])
    def test_approximate_schemes_are_bit_identical_under_crashes(
        self, database, scheme
    ):
        query = parse_query(
            {"fpras_cq": CQ, "fptras_dcq": DCQ, "fptras_ecq": ECQ}[scheme]
        )
        requests = [CountRequest(query=query, method=scheme, seed=31)]
        clean = CountingService(database, ServiceConfig(executor="serial"))
        clean_estimate = clean.count_batch(requests, seed=31).results[0].estimate
        chaotic = CountingService(database, ServiceConfig(executor="serial"))
        chaos_result = chaotic.count_batch(
            requests, seed=31, fault_plan=CRASH_ONCE, retry=RETRY
        ).results[0]
        assert chaos_result.estimate == clean_estimate
        assert chaos_result.scheme == scheme

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_counts_survive_shard_crashes(self, database, num_shards):
        from repro.shard import ByRelationPartitioner, ShardedStructure

        sharded = ShardedStructure.from_structure(
            database,
            ByRelationPartitioner(num_shards, assignment={"E": 0, "F": num_shards - 1}),
        )
        queries = [parse_query(CQ), parse_query(DCQ), parse_query(ECQ)]
        clean = CountingService(sharded, ServiceConfig(executor="serial"))
        clean_report = clean.count_batch(queries, seed=9)
        plan = uniform_plan(seed=7, rate=1.0, sites=("shard.count",))
        chaotic = CountingService(sharded, ServiceConfig(executor="serial"))
        chaos_report = chaotic.count_batch(queries, seed=9, fault_plan=plan, retry=RETRY)
        assert chaos_report.estimates() == clean_report.estimates()

    def test_permanently_dead_shard_falls_back_to_merged_view(self, database):
        from repro.shard import ByRelationPartitioner, ShardedStructure

        sharded = ShardedStructure.from_structure(
            database, ByRelationPartitioner(2, assignment={"E": 0, "F": 1})
        )
        queries = [parse_query(CQ)]
        clean_report = CountingService(
            sharded, ServiceConfig(executor="serial")
        ).count_batch(queries, seed=9)
        # Shard 0 crashes on every attempt: retries exhaust, the task must
        # recount on the merged view — and still agree bit-for-bit.
        plan = FaultPlan(
            seed=7,
            rules=(FaultRule(site="shard.count", kind="crash", times=99, match=(0,)),),
        )
        chaos_report = CountingService(
            sharded, ServiceConfig(executor="serial")
        ).count_batch(queries, seed=9, fault_plan=plan, retry=RETRY)
        assert chaos_report.estimates() == clean_report.estimates()
        assert any(
            "recounted component on merged view" in note
            for note in chaos_report.degradations
        )

    def test_cache_get_fault_degrades_to_a_miss(self, database):
        queries = [parse_query(CQ)]
        clean = CountingService(database, ServiceConfig(executor="serial"))
        clean_report = clean.count_batch(queries, seed=9)
        plan = FaultPlan(
            seed=7, rules=(FaultRule(site="cache.get", kind="error", times=99),)
        )
        chaotic = CountingService(database, ServiceConfig(executor="serial"))
        first = chaotic.count_batch(queries, seed=9, fault_plan=plan, retry=RETRY)
        second = chaotic.count_batch(queries, seed=9, fault_plan=plan, retry=RETRY)
        assert first.estimates() == second.estimates() == clean_report.estimates()
        # The repeat pass would have been a cache hit; the fault forced a
        # recount (with the same seed), recorded as a degradation.
        assert any("degraded to miss" in note for note in second.degradations)

    def test_deadline_exceeded_aborts_the_batch(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        queries = [parse_query(CQ)]
        with pytest.raises(DeadlineExceeded):
            service.count_batch(
                queries,
                seed=9,
                deadline_seconds=1e-9,
                fault_plan=CRASH_ONCE,
                retry=RETRY,
            )

    def test_stream_refresh_faults_serve_stale_then_recover(self, database):
        plan = FaultPlan(
            seed=7, rules=(FaultRule(site="stream.refresh", kind="crash", times=99),)
        )
        service = CountingService(
            database,
            ServiceConfig(executor="serial", fault_plan=plan, retry=RETRY),
        )
        subscription = service.subscribe(parse_query(CQ))
        before = subscription.read()
        database.add_fact("E", (9, 1))
        stale = subscription.read()
        # Permanent refresh faults: the read serves the stale value with
        # provenance instead of raising.
        assert stale.estimate == before.estimate
        assert not stale.fresh and not stale.refreshed
        assert any("serving stale" in note for note in stale.degradations)
        subscription.close()

    def test_stream_transient_fault_refreshes_bit_identically(self, database):
        twin = Database.from_relations(
            {name: sorted(database.relation(name)) for name in ("E", "F")}
        )
        clean_service = CountingService(database, ServiceConfig(executor="serial"))
        plan = FaultPlan(
            seed=7, rules=(FaultRule(site="stream.refresh", kind="crash", times=1),)
        )
        chaos_service = CountingService(
            twin, ServiceConfig(executor="serial", fault_plan=plan, retry=RETRY)
        )
        clean_sub = clean_service.subscribe(parse_query(CQ))
        chaos_sub = chaos_service.subscribe(parse_query(CQ))
        for fact in ((9, 1), (10, 9)):
            database.add_fact("E", fact)
            twin.add_fact("E", fact)
            clean_read, chaos_read = clean_sub.read(), chaos_sub.read()
            assert chaos_read.estimate == clean_read.estimate
            assert chaos_read.fresh
        clean_sub.close()
        chaos_sub.close()


# ---------------------------------------------------------------- chaos smoke
class TestChaosHarness:
    def test_smoke_sweep_is_bit_identical(self):
        from repro.resilience.chaos import run_chaos

        report = run_chaos(seed=2022, rates=(0.5,), smoke=True)
        assert report.ok, [case.to_dict() for case in report.cases]
        assert report.total_checks > 0
        # Chaos that injects nothing tests nothing: the sweep must have
        # actually exercised retries.
        assert sum(case.retries for case in report.cases) > 0

    def test_main_exit_code(self, capsys):
        from repro.resilience.chaos import main

        assert main(["--seed", "2022", "--smoke", "--rates", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "all bit-identical" in out


# ------------------------------------------------------------------ CLI errors
class TestCLIErrorMapping:
    def test_parse_failure_exits_2_with_one_line(self, capsys):
        from repro.cli import main

        assert main(["count", "--query", "Ans(x :- E(x, y)", "--edge-list", "/dev/null"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_bad_fault_plan_exits_2(self, capsys):
        from repro.cli import main

        code = main(
            [
                "batch", "--workload", "2", "--seed", "7", "--executor", "serial",
                "--fault-plan", '{"seed": 1, "rules": [{"site": "bogus"}]}',
            ]
        )
        assert code == 2
        assert "unknown fault site" in capsys.readouterr().err

    def test_fault_plan_flag_reproduces_a_chaos_run(self, capsys, tmp_path):
        from repro.cli import main

        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            '{"seed": 9, "rules": [{"site": "executor.task", "rate": 1.0}]}'
        )
        argv = ["batch", "--workload", "2", "--seed", "7", "--executor", "serial"]
        assert main(argv) == 0
        clean_out = capsys.readouterr().out
        assert main(argv + ["--fault-plan", str(plan_file)]) == 0
        chaos_out = capsys.readouterr().out
        # Same estimates; the chaos run adds resilience lines.
        import re

        def estimates(text):
            return re.findall(r"estimate=\s*([\d.]+)", text)

        assert estimates(clean_out) == estimates(chaos_out) != []
        assert "resilience:" in chaos_out
