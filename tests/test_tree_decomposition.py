"""Tests for tree decompositions, the f-width DP, treewidth and nice tree
decompositions (Definitions 4, 32, 42 and Lemma 43)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    NiceTreeDecomposition,
    TreeDecomposition,
    exact_f_width,
    exact_treewidth,
    f_width_decomposition,
    make_nice,
    treewidth_decomposition,
    treewidth_upper_bound,
)
from repro.decomposition.f_width import decomposition_from_ordering
from repro.hypergraph import (
    Hypergraph,
    complete_graph_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    path_hypergraph,
    random_hypergraph,
    star_hypergraph,
    tree_hypergraph,
)


class TestTreeDecomposition:
    def test_single_bag_is_valid(self):
        hypergraph = Hypergraph(edges=[(1, 2), (2, 3)])
        decomposition = TreeDecomposition.single_bag(hypergraph.vertices)
        assert decomposition.is_valid_for(hypergraph)
        assert decomposition.width() == 2

    def test_invalid_missing_edge_cover(self):
        hypergraph = Hypergraph(edges=[(1, 2), (2, 3)])
        decomposition = TreeDecomposition.from_bag_list([[1, 2], [3]], edges=[(0, 1)])
        errors = decomposition.validation_errors(hypergraph)
        assert any("not contained in any bag" in error for error in errors)

    def test_invalid_disconnected_occurrences(self):
        hypergraph = Hypergraph(edges=[(1, 2), (2, 3)])
        decomposition = TreeDecomposition.from_bag_list(
            [[1, 2], [3], [2, 3]], edges=[(0, 1), (1, 2)]
        )
        errors = decomposition.validation_errors(hypergraph)
        assert any("not connected" in error for error in errors)

    def test_path_decomposition_valid(self):
        hypergraph = path_hypergraph(4)
        decomposition = TreeDecomposition.from_bag_list(
            [[0, 1], [1, 2], [2, 3]], edges=[(0, 1), (1, 2)]
        )
        assert decomposition.is_valid_for(hypergraph)
        assert decomposition.width() == 1

    def test_children_and_parent_structure(self):
        decomposition = TreeDecomposition.from_bag_list(
            [[1], [1, 2], [1, 3]], edges=[(0, 1), (0, 2)], root=0
        )
        assert set(decomposition.children(0)) == {1, 2}
        assert decomposition.children(1) == []
        parents = decomposition.parents()
        assert parents[0] is None
        assert parents[1] == 0

    def test_bottom_up_order_visits_children_first(self):
        decomposition = TreeDecomposition.from_bag_list(
            [[1], [1, 2], [2, 3]], edges=[(0, 1), (1, 2)], root=0
        )
        order = decomposition.bottom_up_order()
        assert order.index(2) < order.index(1) < order.index(0)

    def test_non_tree_rejected(self):
        graph = nx.cycle_graph(3)
        with pytest.raises(ValueError):
            TreeDecomposition(graph, {0: [1], 1: [2], 2: [3]})

    def test_reroot(self):
        decomposition = TreeDecomposition.from_bag_list(
            [[1], [1, 2]], edges=[(0, 1)], root=0
        )
        rerooted = decomposition.reroot(1)
        assert rerooted.root == 1
        assert rerooted.children(1) == [0]


class TestExactTreewidth:
    @pytest.mark.parametrize(
        "hypergraph, expected",
        [
            (path_hypergraph(6), 1),
            (star_hypergraph(5), 1),
            (cycle_hypergraph(6), 2),
            (complete_graph_hypergraph(5), 4),
            (grid_hypergraph(3, 3), 3),
            (Hypergraph(vertices=[1]), 0),
        ],
    )
    def test_known_treewidths(self, hypergraph, expected):
        assert exact_treewidth(hypergraph) == expected

    def test_tree_has_treewidth_one(self):
        hypergraph = tree_hypergraph(10, rng=1)
        assert exact_treewidth(hypergraph) == 1

    def test_single_hyperedge_treewidth(self):
        hypergraph = Hypergraph(edges=[(1, 2, 3, 4)])
        assert exact_treewidth(hypergraph) == 3

    def test_decomposition_achieves_width_and_is_valid(self):
        hypergraph = grid_hypergraph(3, 3)
        decomposition, width, is_exact = treewidth_decomposition(hypergraph)
        assert is_exact
        assert width == 3
        assert decomposition.width() == 3
        assert decomposition.is_valid_for(hypergraph)

    def test_upper_bound_never_below_exact(self):
        hypergraph = grid_hypergraph(3, 4)
        assert treewidth_upper_bound(hypergraph) >= exact_treewidth(hypergraph)

    def test_heuristic_decomposition_valid(self):
        hypergraph = grid_hypergraph(4, 5)
        decomposition, width, is_exact = treewidth_decomposition(hypergraph, exact=False)
        assert not is_exact
        assert decomposition.is_valid_for(hypergraph)
        assert width >= 4 - 1  # heuristic width is at least something sensible


class TestFWidth:
    def test_f_width_with_cardinality_cost_matches_treewidth(self):
        hypergraph = cycle_hypergraph(5)
        value = exact_f_width(hypergraph, lambda bag: len(bag) - 1)
        assert value == exact_treewidth(hypergraph)

    def test_f_width_decomposition_valid(self):
        hypergraph = grid_hypergraph(2, 4)
        decomposition, value = f_width_decomposition(hypergraph, lambda bag: len(bag) - 1)
        assert decomposition.is_valid_for(hypergraph)
        assert value == exact_treewidth(hypergraph)

    def test_decomposition_from_ordering_valid_for_any_ordering(self):
        hypergraph = cycle_hypergraph(6)
        ordering = sorted(hypergraph.vertices)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        assert decomposition.is_valid_for(hypergraph)

    def test_ordering_must_cover_vertices(self):
        hypergraph = path_hypergraph(3)
        with pytest.raises(ValueError):
            decomposition_from_ordering(hypergraph, [0, 1])

    def test_too_large_rejected(self):
        hypergraph = path_hypergraph(25)
        with pytest.raises(ValueError):
            exact_f_width(hypergraph, lambda bag: len(bag) - 1)


class TestNiceTreeDecomposition:
    @pytest.mark.parametrize(
        "hypergraph",
        [
            path_hypergraph(5),
            cycle_hypergraph(5),
            grid_hypergraph(2, 3),
            star_hypergraph(4),
            complete_graph_hypergraph(4),
        ],
    )
    def test_make_nice_produces_valid_nice_decomposition(self, hypergraph):
        decomposition, _, _ = treewidth_decomposition(hypergraph)
        nice = make_nice(decomposition, hypergraph)
        assert nice.is_nice()
        assert nice.is_valid_for(hypergraph)
        # Lemma 43: the width does not increase (bags are subsets of originals).
        assert nice.width() <= decomposition.width()

    def test_nice_root_and_leaves_empty(self):
        hypergraph = path_hypergraph(4)
        decomposition, _, _ = treewidth_decomposition(hypergraph)
        nice = make_nice(decomposition, hypergraph)
        assert nice.bag(nice.root) == frozenset()
        for leaf in nice.leaves():
            assert nice.bag(leaf) == frozenset()

    def test_node_kinds_partition(self):
        hypergraph = grid_hypergraph(2, 3)
        decomposition, _, _ = treewidth_decomposition(hypergraph)
        nice = make_nice(decomposition, hypergraph)
        kinds = {nice.node_kind(node) for node in nice.nodes()}
        assert kinds <= {
            NiceTreeDecomposition.KIND_LEAF,
            NiceTreeDecomposition.KIND_JOIN,
            NiceTreeDecomposition.KIND_INTRODUCE,
            NiceTreeDecomposition.KIND_FORGET,
        }

    def test_introduced_and_forgotten_vertices(self):
        hypergraph = path_hypergraph(3)
        decomposition, _, _ = treewidth_decomposition(hypergraph)
        nice = make_nice(decomposition, hypergraph)
        for node in nice.nodes():
            kind = nice.node_kind(node)
            if kind == NiceTreeDecomposition.KIND_INTRODUCE:
                vertex = nice.introduced_vertex(node)
                (child,) = nice.children(node)
                assert vertex in nice.bag(node)
                assert vertex not in nice.bag(child)
            elif kind == NiceTreeDecomposition.KIND_FORGET:
                vertex = nice.forgotten_vertex(node)
                (child,) = nice.children(node)
                assert vertex not in nice.bag(node)
                assert vertex in nice.bag(child)


@settings(max_examples=25, deadline=None)
@given(
    num_vertices=st.integers(min_value=2, max_value=9),
    num_edges=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=999),
)
def test_exact_treewidth_decomposition_is_always_valid(num_vertices, num_edges, seed):
    hypergraph = random_hypergraph(num_vertices, num_edges, arity=min(3, num_vertices), rng=seed)
    decomposition, width, is_exact = treewidth_decomposition(hypergraph)
    assert is_exact
    assert decomposition.is_valid_for(hypergraph)
    assert decomposition.width() == width
    # Treewidth is bounded by |V| - 1 and at least arity - 1 when there are edges.
    assert width <= num_vertices - 1
    if hypergraph.num_edges() > 0:
        assert width >= hypergraph.arity() - 1


@settings(max_examples=20, deadline=None)
@given(
    num_vertices=st.integers(min_value=2, max_value=8),
    num_edges=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=999),
)
def test_make_nice_preserves_validity_random(num_vertices, num_edges, seed):
    hypergraph = random_hypergraph(num_vertices, num_edges, arity=min(3, num_vertices), rng=seed)
    decomposition, _, _ = treewidth_decomposition(hypergraph)
    nice = make_nice(decomposition, hypergraph)
    assert nice.is_nice()
    assert nice.is_valid_for(hypergraph)
