"""Further property-based and edge-case tests.

These complement :mod:`tests.test_end_to_end_properties` with the DCQ/ECQ
side of the pipeline (Theorems 5/13), monotonicity sanity properties of the
query semantics, and determinism guarantees of the seeded algorithms.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import count_answers_exact, fptras_count_dcq, fptras_count_ecq
from repro.queries import ConjunctiveQuery, parse_query
from repro.queries.atoms import Atom, Disequality, NegatedAtom
from repro.queries.builders import star_query
from repro.workloads import database_from_graph, erdos_renyi_graph, random_tree_query

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SETTINGS
@given(
    graph_seed=st.integers(min_value=0, max_value=40),
    query_seed=st.integers(min_value=0, max_value=40),
)
def test_fptras_tracks_exact_on_random_tree_dcqs(graph_seed, query_seed):
    """Theorem 13 pipeline on random tree-shaped DCQs with one disequality."""
    query = random_tree_query(3, num_free=2, num_disequalities=1, rng=query_seed)
    database = database_from_graph(erdos_renyi_graph(5, 0.5, rng=graph_seed))
    truth = count_answers_exact(query, database)
    estimate = fptras_count_dcq(query, database, 0.4, 0.2, rng=graph_seed * 100 + query_seed)
    if truth == 0:
        assert estimate <= 0.5
    else:
        assert abs(estimate - truth) <= max(0.5 * truth, 1.5)


@SETTINGS
@given(graph_seed=st.integers(min_value=0, max_value=30))
def test_adding_disequalities_never_increases_count(graph_seed):
    """Monotonicity: the all-distinct variant of a query has at most as many
    answers as the unconstrained one (and the FPTRAS respects that shape)."""
    database = database_from_graph(erdos_renyi_graph(6, 0.5, rng=graph_seed))
    plain = star_query(2)
    distinct = star_query(2, with_disequalities=True)
    assert count_answers_exact(distinct, database) <= count_answers_exact(plain, database)


@SETTINGS
@given(graph_seed=st.integers(min_value=0, max_value=30))
def test_adding_negated_atom_never_increases_count(graph_seed):
    """Adding a negated predicate can only remove answers."""
    database = database_from_graph(erdos_renyi_graph(6, 0.5, rng=graph_seed))
    # A sparse second relation to negate against.
    universe = sorted(database.universe)
    for index in range(0, len(universe) - 1, 2):
        database.add_fact("F", (universe[index], universe[index + 1]))
    base = parse_query("Ans(x, y) :- E(x, z), E(z, y)")
    restricted = parse_query("Ans(x, y) :- E(x, z), E(z, y), !F(x, y)")
    assert count_answers_exact(restricted, database) <= count_answers_exact(base, database)


@SETTINGS
@given(graph_seed=st.integers(min_value=0, max_value=25))
def test_freeing_a_variable_never_decreases_count(graph_seed):
    """Projection merges answers: making an existential variable free can only
    increase (or preserve) the number of answers (footnote 4's observation)."""
    database = database_from_graph(erdos_renyi_graph(6, 0.5, rng=graph_seed))
    quantified = star_query(2, centre_free=False)
    free = star_query(2, centre_free=True)
    assert count_answers_exact(quantified, database) <= count_answers_exact(free, database)


class TestDeterminism:
    def test_fptras_ecq_deterministic_for_fixed_seed(self, small_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        first = fptras_count_ecq(query, small_database, 0.3, 0.2, rng=123)
        second = fptras_count_ecq(query, small_database, 0.3, 0.2, rng=123)
        assert first == second

    def test_different_seeds_allowed_to_differ(self, small_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        values = {
            fptras_count_ecq(query, small_database, 0.3, 0.2, rng=seed) for seed in range(3)
        }
        # Not a strict requirement (they may coincide), but they must all be
        # close to the same truth.
        truth = count_answers_exact(query, small_database)
        for value in values:
            assert abs(value - truth) <= max(0.5 * truth, 1.5)


class TestQueryEdgeCases:
    def test_repeated_variable_in_atom(self, triangle_database):
        """Self-loop pattern E(x, x): the triangle has none."""
        query = parse_query("Ans(x) :- E(x, x)")
        assert count_answers_exact(query, triangle_database) == 0

    def test_query_with_only_negated_atom(self):
        from repro.relational import Database

        database = Database.from_relations({"F": [(1, 2)]}, universe=[1, 2, 3])
        query = ConjunctiveQuery(
            free_variables=["x", "y"],
            atoms=[],
            negated_atoms=[NegatedAtom("F", ("x", "y"))],
        )
        # All pairs except (1, 2).
        assert count_answers_exact(query, database) == 9 - 1

    def test_same_pair_positive_and_negative(self):
        """phi(x,y) = E(x,y) ∧ ¬E(x,y) is unsatisfiable."""
        from repro.relational import Database

        database = Database.from_relations({"E": [(1, 2), (2, 1)]}, universe=[1, 2])
        query = parse_query("Ans(x, y) :- E(x, y), !E(x, y)")
        assert count_answers_exact(query, database) == 0
        assert fptras_count_ecq(query, database, 0.3, 0.2, rng=0) == 0.0

    def test_duplicate_atoms_are_harmless(self, triangle_database):
        query = ConjunctiveQuery(
            free_variables=["x", "y"],
            atoms=[Atom("E", ("x", "y")), Atom("E", ("x", "y"))],
        )
        assert count_answers_exact(query, triangle_database) == 6

    def test_disequality_between_free_and_existential(self, triangle_database):
        query = ConjunctiveQuery(
            free_variables=["x"],
            atoms=[Atom("E", ("x", "y"))],
            disequalities=[Disequality("x", "y")],
        )
        # Every vertex of the triangle has a neighbour different from itself.
        assert count_answers_exact(query, triangle_database) == 3
