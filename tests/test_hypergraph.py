"""Unit and property tests for the hypergraph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    PartiteHypergraph,
    complete_graph_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    is_partite_subset,
    path_hypergraph,
    random_hypergraph,
    restrict_to_partite_subset,
    star_hypergraph,
    tree_hypergraph,
)


class TestHypergraphBasics:
    def test_empty_hypergraph(self):
        hypergraph = Hypergraph()
        assert hypergraph.num_vertices() == 0
        assert hypergraph.num_edges() == 0
        assert hypergraph.arity() == 0
        assert hypergraph.is_connected()

    def test_add_edge_adds_vertices(self):
        hypergraph = Hypergraph()
        hypergraph.add_edge([1, 2, 3])
        assert hypergraph.num_vertices() == 3
        assert hypergraph.arity() == 3

    def test_duplicate_edges_collapse(self):
        hypergraph = Hypergraph(edges=[(1, 2), (2, 1)])
        assert hypergraph.num_edges() == 1

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(edges=[()])

    def test_degree_and_neighbours(self):
        hypergraph = Hypergraph(edges=[(1, 2), (2, 3), (1, 2, 4)])
        assert hypergraph.degree(2) == 3
        assert hypergraph.neighbours(2) == {1, 3, 4}
        with pytest.raises(KeyError):
            hypergraph.degree(99)

    def test_isolated_vertices(self):
        hypergraph = Hypergraph(vertices=[1, 2, 3], edges=[(1, 2)])
        assert hypergraph.isolated_vertices() == {3}

    def test_uniformity(self):
        assert Hypergraph(edges=[(1, 2), (3, 4)]).is_uniform(2)
        assert not Hypergraph(edges=[(1, 2), (3, 4, 5)]).is_uniform()

    def test_primal_graph(self):
        hypergraph = Hypergraph(edges=[(1, 2, 3)])
        primal = hypergraph.primal_graph()
        assert primal.number_of_edges() == 3

    def test_connected_components(self):
        hypergraph = Hypergraph(vertices=[5], edges=[(1, 2), (3, 4)])
        components = hypergraph.connected_components()
        assert len(components) == 3

    def test_equality_and_hash(self):
        first = Hypergraph(edges=[(1, 2)])
        second = Hypergraph(edges=[(2, 1)])
        assert first == second
        assert hash(first) == hash(second)

    def test_contains_iter_len(self):
        hypergraph = Hypergraph(edges=[(1, 2)])
        assert 1 in hypergraph
        assert sorted(hypergraph) == [1, 2]
        assert len(hypergraph) == 2


class TestInducedHypergraph:
    def test_induced_definition_39(self):
        hypergraph = Hypergraph(edges=[(1, 2, 3), (3, 4)])
        induced = hypergraph.induced([2, 3, 4])
        assert induced.vertices == frozenset({2, 3, 4})
        assert frozenset({2, 3}) in induced.edges
        assert frozenset({3, 4}) in induced.edges

    def test_induced_drops_disjoint_edges(self):
        hypergraph = Hypergraph(edges=[(1, 2), (3, 4)])
        induced = hypergraph.induced([1, 2])
        assert induced.num_edges() == 1

    def test_induced_unknown_vertex(self):
        with pytest.raises(KeyError):
            Hypergraph(edges=[(1, 2)]).induced([1, 5])

    def test_remove_vertex(self):
        hypergraph = Hypergraph(edges=[(1, 2), (2, 3)])
        removed = hypergraph.remove_vertex(2)
        assert removed.vertices == frozenset({1, 3})
        assert removed.num_edges() == 0 or all(2 not in e for e in removed.edges)

    def test_with_singleton_edges(self):
        hypergraph = Hypergraph(edges=[(1, 2)])
        extended = hypergraph.with_singleton_edges([1, 2])
        assert frozenset({1}) in extended.edges
        assert extended.arity() == 2


class TestGenerators:
    def test_path(self):
        hypergraph = path_hypergraph(5)
        assert hypergraph.num_vertices() == 5
        assert hypergraph.num_edges() == 4
        assert hypergraph.arity() == 2

    def test_cycle(self):
        hypergraph = cycle_hypergraph(5)
        assert hypergraph.num_edges() == 5

    def test_star(self):
        hypergraph = star_hypergraph(4)
        assert hypergraph.degree(0) == 4

    def test_tree_is_connected_and_acyclic(self):
        hypergraph = tree_hypergraph(9, rng=3)
        assert hypergraph.num_edges() == 8
        assert hypergraph.is_connected()

    def test_grid(self):
        hypergraph = grid_hypergraph(2, 3)
        assert hypergraph.num_vertices() == 6
        assert hypergraph.num_edges() == 7

    def test_complete(self):
        hypergraph = complete_graph_hypergraph(5)
        assert hypergraph.num_edges() == 10

    def test_random_hypergraph_arity(self):
        hypergraph = random_hypergraph(10, 15, arity=3, rng=0, uniform=True)
        assert hypergraph.is_uniform(3)

    def test_invalid_generators(self):
        with pytest.raises(ValueError):
            path_hypergraph(0)
        with pytest.raises(ValueError):
            cycle_hypergraph(2)
        with pytest.raises(ValueError):
            random_hypergraph(3, 2, arity=5)


class TestPartiteHypergraph:
    def test_basic_construction(self):
        hypergraph = PartiteHypergraph([[("a", 0)], [("b", 1), ("c", 1)]])
        hypergraph.add_edge([("a", 0), ("b", 1)])
        assert hypergraph.num_classes == 2
        assert hypergraph.num_edges() == 1

    def test_overlapping_classes_rejected(self):
        with pytest.raises(ValueError):
            PartiteHypergraph([[1, 2], [2, 3]])

    def test_edge_must_hit_every_class(self):
        hypergraph = PartiteHypergraph([[1], [2], [3]])
        with pytest.raises(ValueError):
            hypergraph.add_edge([1, 2])
        with pytest.raises(ValueError):
            hypergraph.add_edge([1, 2, 2])

    def test_class_of(self):
        hypergraph = PartiteHypergraph([[1], [2]])
        assert hypergraph.class_of(2) == 1
        with pytest.raises(KeyError):
            hypergraph.class_of(99)

    def test_restrict_keeps_matching_edges(self):
        hypergraph = PartiteHypergraph([[1, 2], [3, 4]])
        hypergraph.add_edge([1, 3])
        hypergraph.add_edge([2, 4])
        restricted = hypergraph.restrict([[1], [3, 4]])
        assert restricted.num_edges() == 1
        assert restricted.has_edge([1, 3])

    def test_edge_free_predicate(self):
        hypergraph = PartiteHypergraph([[1], [2]])
        assert hypergraph.is_edge_free()
        hypergraph.add_edge([1, 2])
        assert not hypergraph.is_edge_free()

    def test_restrict_matches_reference(self):
        hypergraph = PartiteHypergraph([[1, 2], [3, 4], [5, 6]])
        hypergraph.add_edge([1, 3, 5])
        hypergraph.add_edge([2, 4, 6])
        hypergraph.add_edge([1, 4, 6])
        subsets = [[1, 2], [4], [6]]
        restricted = hypergraph.restrict(subsets)
        reference = restrict_to_partite_subset(hypergraph, subsets)
        assert restricted.edges == reference.edges

    def test_is_partite_subset(self):
        hypergraph = Hypergraph(edges=[(1, 2), (3, 4)])
        assert is_partite_subset(hypergraph, [[1], [3]])
        assert not is_partite_subset(hypergraph, [[1, 3], [3]])
        assert not is_partite_subset(hypergraph, [[99], [3]])


@settings(max_examples=50, deadline=None)
@given(
    num_vertices=st.integers(min_value=1, max_value=10),
    num_edges=st.integers(min_value=0, max_value=15),
    arity=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_induced_hypergraph_properties(num_vertices, num_edges, arity, seed):
    """H[X] is always a hypergraph on X whose edges are subsets of X, and
    inducing on V(H) is the identity up to edge trimming (Definition 39)."""
    arity = min(arity, num_vertices)
    hypergraph = random_hypergraph(num_vertices, num_edges, arity, rng=seed)
    subset = [v for v in hypergraph.vertices if v % 2 == 0]
    if subset:
        induced = hypergraph.induced(subset)
        assert induced.vertices == frozenset(subset)
        for edge in induced.edges:
            assert edge <= frozenset(subset)
    full = hypergraph.induced(hypergraph.vertices)
    assert full.edges == hypergraph.edges


@settings(max_examples=30, deadline=None)
@given(
    num_vertices=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=500),
)
def test_primal_graph_covers_cooccurring_pairs(num_vertices, seed):
    hypergraph = random_hypergraph(
        num_vertices, num_vertices, arity=min(3, num_vertices), rng=seed
    )
    primal = hypergraph.primal_graph()
    for edge in hypergraph.edges:
        members = sorted(edge, key=repr)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                assert primal.has_edge(u, v)
