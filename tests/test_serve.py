"""repro.serve: wire schema round-trips, admission control, coalescing, and
end-to-end HTTP tests against a real socket."""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time

import pytest

from repro.queries import parse_query
from repro.resilience.faults import FaultPlan, FaultRule
from repro.serve import (
    AdmissionController,
    BatchRequest,
    Coalescer,
    FactsUpdate,
    ServeClient,
    ServeConfig,
    ServeError,
    TenantSpec,
    TokenBucket,
    WireError,
    coalescing_key,
    parse_tenants,
    schema,
    start_in_thread,
)
from repro.service import CountingService, CountRequest, ServiceConfig
from repro.stream.live import LiveCount


@contextlib.contextmanager
def running_server(database, service_config=None, serve_config=None):
    """A CountingServer on an ephemeral port, torn down on exit."""
    service = CountingService(database, service_config)
    handle = start_in_thread(service, serve_config)
    try:
        yield service, handle
    finally:
        handle.stop()


def client_for(handle, api_key=None, timeout=30.0):
    return ServeClient(handle.host, handle.port, api_key=api_key, timeout=timeout)


#: Injects a deterministic first-attempt latency into every count so herd
#: members reliably overlap the leader (retries keep estimates bit-identical).
SLOW_PLAN = FaultPlan(
    rules=(
        FaultRule(
            site="executor.task", kind="latency", rate=1.0, latency_seconds=0.25
        ),
    ),
    seed=1,
)


class TestWireSchema:
    def test_count_request_round_trip_preserves_every_field(self):
        request = CountRequest(
            query=parse_query("Ans(x) :- E(x, y), E(y, z), x != z"),
            epsilon=0.125,
            delta=0.0625,
            seed=1234,
            method="fpras_cq",
            latency_budget_seconds=0.75,
            deadline_seconds=2.5,
        )
        assert schema.from_json(schema.to_json(request)) == request

    def test_count_result_round_trip_is_bit_identical(self, medium_database):
        service = CountingService(medium_database)
        result = service.submit(
            query=parse_query("Ans(x, y) :- E(x, y)"), seed=7, epsilon=0.25
        )
        decoded = schema.from_json(schema.to_json(result))
        assert decoded == result
        assert decoded.estimate == result.estimate
        assert decoded.plan == result.plan

    def test_batch_report_round_trip(self, medium_database):
        service = CountingService(medium_database)
        report = service.count_batch(
            [parse_query("Ans(x) :- E(x, y)"), parse_query("Ans(x, y) :- E(x, y)")],
            seed=5,
            executor="serial",
        )
        decoded = schema.from_json(schema.to_json(report), expect="batch_report")
        assert decoded.results == report.results
        assert decoded.wall_seconds == report.wall_seconds
        assert decoded.cache_misses == report.cache_misses

    def test_batch_request_and_facts_update_round_trip(self):
        batch = BatchRequest(
            requests=(
                CountRequest(query=parse_query("Ans(x) :- E(x, y)"), seed=3),
            ),
            seed=11,
            executor="serial",
            max_workers=2,
            deadline_seconds=9.0,
        )
        assert schema.from_json(schema.to_json(batch)) == batch
        update = FactsUpdate(
            adds=(("E", (1, 2)), ("Name", ("alice", 7))),
            removes=(("E", (2, 1)),),
        )
        assert schema.from_json(schema.to_json(update)) == update

    def test_live_count_round_trip(self):
        live = LiveCount(
            estimate=41.5,
            scheme="fpras_cq",
            query_class="CQ",
            fresh=False,
            refreshed=True,
            mode="delta",
            pending_ticks=2,
            refresh_count=3,
            seed=9,
            epsilon=0.2,
            delta=0.05,
            degradations=("stale",),
            gap_recounts=1,
            replans=1,
            replan_events=("drift",),
        )
        assert schema.from_json(schema.to_json(live)) == live

    def test_decoders_tolerate_unknown_fields(self):
        request = CountRequest(query=parse_query("Ans(x) :- E(x, y)"), seed=2)
        message = schema.encode(request)
        message["field_from_the_future"] = {"nested": True}
        assert schema.decode(message) == request

    def test_wrong_protocol_version_is_rejected(self):
        message = schema.encode(
            CountRequest(query=parse_query("Ans(x) :- E(x, y)"))
        )
        message["api"] = "repro.v2"
        with pytest.raises(WireError, match="unsupported protocol"):
            schema.decode(message)

    def test_envelope_refuses_reserved_keys_and_databases(self, small_database):
        with pytest.raises(WireError, match="reserved"):
            schema.envelope("stats", {"api": "x"})
        with pytest.raises(WireError, match="wire"):
            schema.count_request_payload(
                CountRequest(
                    query=parse_query("Ans(x) :- E(x, y)"),
                    database=small_database,
                )
            )

    def test_expected_kind_mismatch_raises(self):
        text = schema.to_json(CountRequest(query=parse_query("Ans(x) :- E(x, y)")))
        with pytest.raises(WireError, match="expected kind"):
            schema.from_json(text, expect="count_result")


class TestSubmitRequestForm:
    def test_request_form_matches_legacy_kwargs(self, medium_database):
        service = CountingService(medium_database)
        query = parse_query("Ans(x, y) :- E(x, y)")
        via_request = service.submit(
            request=CountRequest(query=query, seed=13, epsilon=0.25)
        )
        via_kwargs = service.submit(query=query, seed=13, epsilon=0.25)
        assert via_request.estimate == via_kwargs.estimate
        assert via_request.scheme == via_kwargs.scheme

    def test_mixing_request_and_kwargs_raises(self, medium_database):
        service = CountingService(medium_database)
        query = parse_query("Ans(x) :- E(x, y)")
        with pytest.raises(ValueError, match="not both"):
            service.submit(query, request=CountRequest(query=query))

    def test_submit_without_query_or_request_raises(self, medium_database):
        service = CountingService(medium_database)
        with pytest.raises(ValueError, match="needs a query"):
            service.submit()

    def test_per_request_deadline_expires(self, medium_database):
        from repro.resilience.retry import DeadlineExceeded

        service = CountingService(medium_database)
        request = CountRequest(
            query=parse_query("Ans(x, y) :- E(x, y)"),
            deadline_seconds=1e-9,
        )
        with pytest.raises(DeadlineExceeded):
            service.submit(request=request)


class TestAdmission:
    def test_token_bucket_admits_then_rejects_with_retry_hint(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        assert bucket.acquire() is None
        assert bucket.acquire() is None
        assert bucket.acquire() is None
        retry = bucket.acquire()
        assert retry == pytest.approx(0.5)  # one token at rate 2/s
        now[0] += 0.5
        assert bucket.acquire() is None

    def test_controller_maps_keys_and_meters_quota(self):
        now = [0.0]
        controller = AdmissionController(
            (TenantSpec(name="acme", api_key="k1", rate=1.0, burst=1.0),),
            clock=lambda: now[0],
        )
        assert controller.admit("k1").admitted
        denied = controller.admit("k1")
        assert (denied.admitted, denied.status) == (False, 429)
        assert denied.retry_after == pytest.approx(1.0)
        unknown = controller.admit("wrong")
        assert (unknown.admitted, unknown.status) == (False, 401)
        stats = controller.stats()
        assert stats["admitted"] == 1
        assert stats["rejected_quota"] == 1
        assert stats["rejected_auth"] == 1

    def test_open_access_when_no_tenants(self):
        controller = AdmissionController()
        assert controller.open_access
        assert controller.admit(None).admitted

    def test_parse_tenants_from_json(self):
        tenants = parse_tenants(
            '[{"name": "a", "key": "ka", "rate": 5, "burst": 10}, {"key": "kb"}]'
        )
        assert tenants[0] == TenantSpec(name="a", api_key="ka", rate=5.0, burst=10.0)
        assert tenants[1].name == "kb"
        with pytest.raises(ValueError):
            parse_tenants('[{"name": "missing-key"}]')

    def test_duplicate_api_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            AdmissionController(
                (TenantSpec(name="a", api_key="k"), TenantSpec(name="b", api_key="k"))
            )


class TestCoalescer:
    def test_concurrent_fetches_share_one_execution(self):
        async def scenario():
            coalescer = Coalescer()
            runs = []

            async def runner():
                runs.append(1)
                await asyncio.sleep(0.05)
                return 42

            outcomes = await asyncio.gather(
                *(coalescer.fetch("k", runner) for _ in range(5))
            )
            return runs, outcomes

        runs, outcomes = asyncio.run(scenario())
        assert len(runs) == 1
        assert all(value == 42 for value, _ in outcomes)
        assert sorted(coalesced for _, coalesced in outcomes) == [
            False, True, True, True, True,
        ]

    def test_leader_failure_propagates_to_followers(self):
        async def scenario():
            coalescer = Coalescer()

            async def runner():
                await asyncio.sleep(0.05)
                raise RuntimeError("boom")

            results = await asyncio.gather(
                *(coalescer.fetch("k", runner) for _ in range(3)),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(entry, RuntimeError) for entry in results)

    def test_key_splits_on_seed_and_mutation(self, medium_database):
        service = CountingService(medium_database)
        query = parse_query("Ans(x, y) :- E(x, y)")
        base = coalescing_key(service, CountRequest(query=query, seed=1))
        assert base == coalescing_key(service, CountRequest(query=query, seed=1))
        assert base != coalescing_key(service, CountRequest(query=query, seed=2))
        medium_database.add_fact("E", (0, 0))  # self-loops never pre-exist
        assert base != coalescing_key(service, CountRequest(query=query, seed=1))


class TestServerEndToEnd:
    def test_count_is_bit_identical_to_in_process_submit(
        self, medium_database, medium_graph
    ):
        from repro.workloads import database_from_graph

        twin = CountingService(database_from_graph(medium_graph))
        with running_server(medium_database) as (_, handle):
            client = client_for(handle)
            for text, seed in [
                ("Ans(x, y) :- E(x, y)", 7),
                ("Ans(x) :- E(x, y), E(y, z)", 11),
                ("Ans(x, y) :- E(x, y), x != y", 13),
            ]:
                served = client.count(text, seed=seed, epsilon=0.25)
                local = twin.submit(
                    query=parse_query(text), seed=seed, epsilon=0.25
                )
                assert served.estimate == local.estimate
                assert served.scheme == local.scheme
                assert served.seed == local.seed

    def test_batch_matches_in_process_count_batch(
        self, medium_database, medium_graph
    ):
        from repro.workloads import database_from_graph

        texts = ["Ans(x) :- E(x, y)", "Ans(x, y) :- E(x, y)"]
        twin = CountingService(database_from_graph(medium_graph))
        local = twin.count_batch(
            [parse_query(text) for text in texts], seed=5, executor="serial"
        )
        with running_server(medium_database) as (_, handle):
            served = client_for(handle).count_batch(
                texts, seed=5, executor="serial"
            )
        assert [r.estimate for r in served.results] == [
            r.estimate for r in local.results
        ]
        assert served.executed_executor == "serial"

    def test_plan_stats_metrics_health(self, medium_database):
        with running_server(medium_database) as (service, handle):
            client = client_for(handle)
            plan = client.plan("Ans(x) :- E(x, y)")
            assert plan.scheme == service.plan(parse_query("Ans(x) :- E(x, y)")).scheme
            client.count("Ans(x) :- E(x, y)", seed=1)
            stats = client.stats()
            assert set(stats) == {"service", "serve"}
            assert stats["serve"]["max_pending"] == 64
            assert stats["serve"]["admission"]["open_access"] is True
            metrics = client.metrics_text()
            assert "repro_serve_requests" in metrics
            health = client.health()
            assert health["status"] == "ok"
            assert health["database_size"] == medium_database.size()

    def test_herd_of_identical_requests_counts_once(self, medium_database):
        herd = 24
        with running_server(
            medium_database, ServiceConfig(fault_plan=SLOW_PLAN)
        ) as (service, handle):
            client = client_for(handle)
            miss = service.metrics.counter("service.requests", cache="miss")
            misses_before = miss.value
            barrier = threading.Barrier(herd)
            results, errors = [], []

            def worker():
                barrier.wait()
                try:
                    results.append(client.count("Ans(x, y) :- E(x, y)", seed=9))
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(herd)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(results) == herd
            # The whole herd executed the underlying count exactly once...
            assert miss.value - misses_before == 1
            # ...and every response carries the identical estimate.
            assert len({result.estimate for result in results}) == 1
            # Followers carry coalesced provenance.  (A straggler arriving
            # after the leader finished is served by the result cache rather
            # than the coalescer — still zero extra executions — so the
            # coalesced count is bounded, not pinned, at herd - 1.)
            coalesced = sum(1 for result in results if result.coalesced)
            assert 1 <= coalesced <= herd - 1
            stats = client.stats()["serve"]
            assert stats["coalesced"] == coalesced
            assert stats["led"] >= 1

    def test_herd_estimate_is_bit_identical_to_in_process(
        self, medium_database, medium_graph
    ):
        from repro.workloads import database_from_graph

        twin = CountingService(database_from_graph(medium_graph))
        local = twin.submit(
            query=parse_query("Ans(x, y) :- E(x, y), x != y"), seed=21
        )
        with running_server(
            medium_database, ServiceConfig(fault_plan=SLOW_PLAN)
        ) as (_, handle):
            client = client_for(handle)
            barrier = threading.Barrier(8)
            results = []

            def worker():
                barrier.wait()
                results.append(
                    client.count("Ans(x, y) :- E(x, y), x != y", seed=21)
                )

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert {result.estimate for result in results} == {local.estimate}

    def test_auth_and_quota_rejections(self, medium_database):
        config = ServeConfig(
            tenants=(TenantSpec(name="acme", api_key="k1", rate=0.5, burst=2.0),)
        )
        with running_server(medium_database, serve_config=config) as (_, handle):
            good = client_for(handle, api_key="k1")
            assert good.count("Ans(x, y) :- E(x, y)", seed=1).estimate >= 0

            with pytest.raises(ServeError) as unknown:
                client_for(handle, api_key="wrong").count("Ans(x) :- E(x, y)")
            assert unknown.value.status == 401
            with pytest.raises(ServeError) as missing:
                client_for(handle).count("Ans(x) :- E(x, y)")
            assert missing.value.status == 401

            with pytest.raises(ServeError) as quota:
                for _ in range(4):
                    good.count("Ans(x, y) :- E(x, y)", seed=1)
            assert quota.value.status == 429
            assert quota.value.retry_after > 0

    def test_batch_admission_costs_one_token_per_query(self, medium_database):
        config = ServeConfig(
            tenants=(TenantSpec(name="acme", api_key="k1", rate=0.1, burst=3.0),)
        )
        with running_server(medium_database, serve_config=config) as (_, handle):
            client = client_for(handle, api_key="k1")
            with pytest.raises(ServeError) as rejected:
                client.count_batch(
                    ["Ans(x) :- E(x, y)"] * 4, seed=1, executor="serial"
                )
            assert rejected.value.status == 429

    def test_deadline_maps_to_504(self, medium_database):
        with running_server(medium_database) as (_, handle):
            with pytest.raises(ServeError) as timed_out:
                client_for(handle).count(
                    "Ans(x, y) :- E(x, y)", seed=1, deadline_seconds=1e-9
                )
            assert timed_out.value.status == 504

    def test_queue_overflow_returns_429_with_retry_after(self, medium_database):
        config = ServeConfig(max_pending=1, queue_retry_after=0.05)
        with running_server(
            medium_database, ServiceConfig(fault_plan=SLOW_PLAN), config
        ) as (_, handle):
            client = client_for(handle)
            occupant = threading.Thread(
                target=lambda: client.count("Ans(x, y) :- E(x, y)", seed=1)
            )
            occupant.start()
            time.sleep(0.1)  # let it enter the (slow) count
            with pytest.raises(ServeError) as overflow:
                client.count("Ans(x) :- E(x, y), E(y, z)", seed=2)
            assert overflow.value.status == 429
            assert overflow.value.retry_after == pytest.approx(0.05)
            occupant.join(timeout=30)

    def test_facts_mutation_feeds_sse_subscription(self, medium_database):
        with running_server(medium_database) as (_, handle):
            client = client_for(handle)
            events = []

            def subscriber():
                for live in client.subscribe(
                    "Ans(x, y) :- E(x, y)", max_events=2, timeout=30
                ):
                    events.append(live)

            thread = threading.Thread(target=subscriber)
            thread.start()
            deadline = time.time() + 10
            while not events and time.time() < deadline:
                time.sleep(0.02)
            assert events, "first SSE event never arrived"
            first = events[0].estimate
            outcome = client.add_facts(adds=[("E", (0, 99)), ("E", (99, 0))])
            assert outcome["added"] == 2
            thread.join(timeout=30)
            assert len(events) == 2
            assert events[1].estimate == first + 2  # exact scheme, delta-patched
            assert events[1].mode in {"delta", "recount", "estimate"}

    def test_facts_removal_and_unknown_fact_is_400(self, medium_database):
        with running_server(medium_database) as (_, handle):
            client = client_for(handle)
            client.add_facts(adds=[("E", (0, 99))])
            client.add_facts(removes=[("E", (0, 99))])
            with pytest.raises(ServeError) as missing:
                client.add_facts(removes=[("E", (0, 99))])
            assert missing.value.status == 400

    def test_mutations_can_be_disabled(self, medium_database):
        config = ServeConfig(allow_mutations=False)
        with running_server(medium_database, serve_config=config) as (_, handle):
            with pytest.raises(ServeError) as forbidden:
                client_for(handle).add_facts(adds=[("E", (0, 99))])
            assert forbidden.value.status == 403

    def test_unknown_paths_and_versions_get_404(self, medium_database):
        import http.client

        with running_server(medium_database) as (_, handle):
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=10
            )
            connection.request("GET", "/v2/count")
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 404
            assert "repro.v1" in body["error"]
            connection.close()

            with pytest.raises(ServeError) as missing:
                client_for(handle)._request("GET", "/v1/nothing")
            assert missing.value.status == 404

    def test_malformed_body_is_400_not_500(self, medium_database):
        import http.client

        with running_server(medium_database) as (_, handle):
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=10
            )
            connection.request(
                "POST",
                "/v1/count",
                body=b"this is not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            payload = json.loads(response.read())
            assert payload["kind"] == "error"
            connection.close()

    def test_server_default_deadline_applies(self, medium_database):
        config = ServeConfig(default_deadline_seconds=1e-9)
        with running_server(medium_database, serve_config=config) as (_, handle):
            with pytest.raises(ServeError) as timed_out:
                client_for(handle).count("Ans(x, y) :- E(x, y)", seed=1)
            assert timed_out.value.status == 504
