"""Differential tests: indexed engine vs. naive engine vs. brute force.

The indexed, propagation-based CSP engine must be a pure performance change:
on every instance it has to produce exactly the same solutions — and in the
same enumeration order — as the retained naive scan path, and the same counts
as the independent ``count_answers_bruteforce`` reference.  These tests sweep
seeded random workloads (CQs with disequalities and negations included) from
:mod:`repro.workloads` across all three implementations.
"""

from __future__ import annotations

import pytest

from repro.core.exact import (
    count_answers_exact,
    count_solutions_exact,
    enumerate_answers_exact,
)
from repro.queries.builders import path_query, star_query
from repro.relational import (
    Constraint,
    CSPInstance,
    NotEqualConstraint,
    count_homomorphisms,
    enumerate_homomorphisms,
)
from repro.relational.structure import Structure
from repro.workloads import (
    database_from_graph,
    erdos_renyi_graph,
    random_database,
    random_tree_query,
)


def _random_workloads():
    """Seeded (query, database) pairs covering CQs, DCQs and ECQs."""
    workloads = []
    for seed in range(4):
        query = random_tree_query(
            num_variables=4,
            num_free=2,
            num_disequalities=seed % 3,
            num_negations=seed % 2,
            rng=seed,
        )
        database = random_database(
            universe_size=5,
            relations={"E": 2, "F": 2},
            facts_per_relation=10,
            rng=seed + 100,
        )
        workloads.append((f"tree-seed{seed}", query, database))
    graph_db = database_from_graph(erdos_renyi_graph(7, 0.4, rng=3))
    workloads.append(("two-hop", path_query(2, free_endpoints_only=True), graph_db))
    workloads.append(("star3-dcq", star_query(3, with_disequalities=True), graph_db))
    return workloads


WORKLOADS = _random_workloads()
IDS = [name for name, _, _ in WORKLOADS]


@pytest.mark.parametrize("name,query,database", WORKLOADS, ids=IDS)
def test_engines_agree_with_bruteforce_on_answer_counts(name, query, database):
    brute = count_answers_exact(query, database, method="bruteforce")
    naive = count_answers_exact(query, database, engine="naive")
    indexed = count_answers_exact(query, database, engine="indexed")
    assert indexed == naive == brute


@pytest.mark.parametrize("name,query,database", WORKLOADS, ids=IDS)
def test_engines_agree_on_solution_counts_and_answer_sets(name, query, database):
    assert count_solutions_exact(query, database, engine="indexed") == count_solutions_exact(
        query, database, engine="naive"
    )
    assert enumerate_answers_exact(query, database, engine="indexed") == enumerate_answers_exact(
        query, database, engine="naive"
    )


def test_engines_enumerate_homomorphisms_in_identical_order():
    source = Structure.from_graph([(0, 1), (1, 2), (2, 3)])
    target = Structure.from_graph(erdos_renyi_graph(6, 0.5, rng=5).edges())
    naive = list(enumerate_homomorphisms(source, target, engine="naive"))
    indexed = list(enumerate_homomorphisms(source, target, engine="indexed"))
    assert naive == indexed
    assert count_homomorphisms(source, target, engine="indexed") == len(naive)


def test_engines_agree_on_mixed_constraint_csp():
    for engine_pair in ({"x": {1, 2, 3}, "y": {1, 2, 3}, "z": {1, 2, 3}},):
        constraints = [
            Constraint(scope=("x", "y"), allowed=frozenset({(1, 2), (2, 3), (3, 1), (2, 2)})),
            Constraint(scope=("y", "z"), allowed=frozenset({(2, 1), (3, 3), (2, 2)})),
            NotEqualConstraint("x", "z"),
        ]
        naive = list(CSPInstance(engine_pair, constraints, engine="naive").iter_solutions())
        indexed = list(CSPInstance(engine_pair, constraints, engine="indexed").iter_solutions())
        assert naive == indexed


def test_trusted_constructor_skips_validation_but_matches_semantics():
    allowed = frozenset({(1, 2), (2, 1)})
    checked = Constraint(scope=("x", "y"), allowed=allowed)
    trusted = Constraint.trusted(("x", "y"), allowed)
    assert checked == trusted
    assert trusted.consistent_with_partial({"x": 1}) and not trusted.consistent_with_partial({"x": 3})
    # The validated path still rejects ragged tuples...
    with pytest.raises(ValueError):
        Constraint(scope=("x", "y"), allowed=frozenset({(1,)}))
    # ...while the trusted path is explicitly a no-validation fast path.
    Constraint.trusted(("x", "y"), frozenset({(1,)}))


def test_shared_relation_index_is_cached_and_invalidated():
    database = Structure.from_graph([(1, 2), (2, 3)])
    first = database.relation_index("E")
    assert database.relation_index("E") is first
    database.add_fact("E", (3, 1))
    second = database.relation_index("E")
    assert second is not first
    assert (3, 1) in second.allowed


def test_canonical_universe_cached_and_copy_shares_caches():
    database = Structure.from_graph([(1, 2), (2, 3)])
    universe = database.canonical_universe()
    assert universe == tuple(sorted(database.universe, key=repr))
    assert database.canonical_universe() is universe
    index = database.relation_index("E")
    duplicate = database.copy()
    assert duplicate == database
    assert duplicate.relation_index("E") is index
    # Mutating the copy must not leak into the original.
    duplicate.add_fact("E", (9, 9))
    assert not database.has_fact("E", (9, 9))
    assert duplicate.relation_index("E") is not index
