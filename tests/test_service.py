"""Tests for the `repro.service` subsystem: planner, caches, canonical keys,
batch execution, and version-counter-based cache invalidation."""

import pytest

from repro.core import count_answers_exact
from repro.queries import parse_query
from repro.relational.structure import Database
from repro.service import (
    CountingService,
    CountRequest,
    LRUCache,
    Planner,
    PlannerConfig,
    ServiceConfig,
    canonical_query_key,
    database_cache_key,
    execute_scheme,
    mixed_query_workload,
    run_workload,
    workload_database,
)
from repro.util.rng import derive_seed


@pytest.fixture
def database():
    return Database.from_relations(
        {
            "E": [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1)],
            "F": [(1, 3), (2, 4)],
        }
    )


CQ = "Ans(x) :- E(x, y), E(y, z)"
DCQ = "Ans(x) :- E(x, y), E(y, z), x != z"
ECQ = "Ans(x) :- E(x, y), !F(x, y)"


# ------------------------------------------------------------------- planner
class TestPlanner:
    def test_small_instances_go_exact(self, database):
        planner = Planner()
        for text in (CQ, DCQ, ECQ):
            plan = planner.plan(parse_query(text), database)
            assert plan.scheme == "exact"
            assert plan.size_class == "small"
            assert plan.trace

    def test_large_instances_follow_the_dichotomy(self, database):
        planner = Planner(PlannerConfig(exact_size_threshold=0))
        assert planner.plan(parse_query(CQ), database).scheme == "fpras_cq"
        assert planner.plan(parse_query(DCQ), database).scheme == "fptras_dcq"
        assert planner.plan(parse_query(ECQ), database).scheme == "fptras_ecq"

    def test_exact_plans_skip_the_width_computation(self, database):
        plan = Planner().plan(parse_query(DCQ), database)
        assert plan.query_class == "DCQ"
        assert plan.scheme == "exact"
        assert plan.treewidth is None  # widths are exponential; not needed here
        assert "tw=" not in plan.explain()
        assert plan.to_dict()["scheme"] == "exact"

    def test_approximation_plans_record_widths(self, database):
        plan = Planner(PlannerConfig(exact_size_threshold=0)).plan(
            parse_query(DCQ), database
        )
        assert plan.scheme == "fptras_dcq"
        assert plan.treewidth == 1
        assert plan.arity == 2
        assert "tw=1" in plan.explain()

    def test_override_wins_and_is_validated(self, database):
        planner = Planner()
        plan = planner.plan(parse_query(DCQ), database, override="fptras_dcq")
        assert plan.scheme == "fptras_dcq"
        assert plan.override == "fptras_dcq"
        with pytest.raises(ValueError, match="does not apply"):
            planner.plan(parse_query(DCQ), database, override="fpras_cq")
        with pytest.raises(ValueError, match="unknown scheme"):
            planner.plan(parse_query(CQ), database, override="magic")

    def test_plans_are_cached_on_canonical_form(self, database):
        planner = Planner()
        planner.plan(parse_query(CQ), database)
        planner.plan(parse_query("Ans(a) :- E(a, b), E(b, c)"), database)
        stats = planner.cache.stats()
        assert stats.hits == 1 and stats.misses == 1


# ------------------------------------------------------------ canonical keys
class TestCanonicalKeys:
    def test_alpha_equivalent_queries_share_a_key(self):
        key1 = canonical_query_key(parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y"))
        key2 = canonical_query_key(parse_query("Ans(a, b) :- E(a, w), E(w, b), a != b"))
        assert key1 == key2

    def test_different_queries_get_different_keys(self):
        assert canonical_query_key(parse_query(CQ)) != canonical_query_key(
            parse_query(DCQ)
        )
        # Same atoms, different free-variable order: different answer sets.
        assert canonical_query_key(
            parse_query("Ans(x, y) :- E(x, y)")
        ) != canonical_query_key(parse_query("Ans(y, x) :- E(x, y)"))

    def test_atom_order_is_irrelevant(self):
        key1 = canonical_query_key(parse_query("Ans(x) :- E(x, y), F(x, y)"))
        key2 = canonical_query_key(parse_query("Ans(x) :- F(x, y), E(x, y)"))
        assert key1 == key2


# ---------------------------------------------------------------- LRU cache
class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.hits == 3 and stats.misses == 1

    def test_zero_size_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_peek_does_not_touch_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.stats().hits == 0


# ------------------------------------------------------------------- service
class TestCountingService:
    def test_submit_matches_exact_count(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        query = parse_query(CQ)
        result = service.submit(query, seed=7)
        assert result.scheme == "exact"
        assert result.cache == "miss"
        assert result.count == count_answers_exact(query, database)

    def test_batch_seeding_matches_direct_library_calls(self, database):
        service = CountingService(
            database, ServiceConfig(executor="serial", epsilon=0.6, delta=0.3)
        )
        requests = [
            CountRequest(query=parse_query(CQ)),
            CountRequest(query=parse_query(DCQ), method="fptras_dcq"),
            CountRequest(query=parse_query(ECQ)),
        ]
        report = service.count_batch(requests, seed=123)
        for index, result in enumerate(report.results):
            direct = execute_scheme(
                result.scheme,
                requests[index].query,
                database,
                epsilon=result.epsilon,
                delta=result.delta,
                seed=derive_seed(123, index),
                engine="indexed",
            )
            assert direct == result.estimate

    def test_resubmission_hits_the_result_cache(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        requests = [parse_query(CQ), parse_query(DCQ), parse_query(ECQ)]
        first = service.count_batch(requests, seed=5)
        second = service.count_batch(requests, seed=5)
        assert first.cache_misses == 3 and first.cache_hits == 0
        assert second.cache_hits == 3 and second.cache_misses == 0
        assert second.estimates() == first.estimates()
        assert all(result.cache == "hit" for result in second.results)

    def test_different_seed_is_a_different_cache_entry(self, database):
        service = CountingService(
            database,
            ServiceConfig(
                executor="serial",
                epsilon=0.6,
                delta=0.3,
                planner=PlannerConfig(exact_size_threshold=0),
            ),
        )
        query = parse_query(DCQ)
        service.count_batch([query], seed=1)
        report = service.count_batch([query], seed=2)
        assert report.cache_misses == 1

    def test_mutating_a_relation_evicts_stale_results(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        query = parse_query(CQ)
        service.submit(query, seed=3)
        assert service.submit(query, seed=3).cache == "hit"
        database.add_fact("E", (4, 2))
        after = service.submit(query, seed=3)
        assert after.cache == "miss"
        assert after.count == count_answers_exact(query, database)

    def test_mutating_an_unrelated_relation_keeps_hits(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        query = parse_query(CQ)  # mentions only E
        service.submit(query, seed=3)
        database.add_fact("F", (4, 4))
        assert service.submit(query, seed=3).cache == "hit"

    def test_copies_never_share_cache_entries(self, database):
        query = parse_query(CQ)
        copy = database.copy()
        assert database_cache_key(database, query) != database_cache_key(copy, query)

    def test_thread_executor_agrees_with_serial(self, database):
        queries = [parse_query(CQ), parse_query(DCQ), parse_query(ECQ)]
        serial = CountingService(database, ServiceConfig(executor="serial"))
        threaded = CountingService(
            database, ServiceConfig(executor="thread", max_workers=2)
        )
        serial_report = serial.count_batch(queries, seed=9)
        threaded_report = threaded.count_batch(queries, seed=9)
        assert serial_report.estimates() == threaded_report.estimates()

    def test_process_executor_agrees_with_serial(self, database):
        queries = [parse_query(CQ), parse_query(DCQ)]
        serial = CountingService(database, ServiceConfig(executor="serial"))
        pooled = CountingService(
            database, ServiceConfig(executor="process", max_workers=2)
        )
        serial_report = serial.count_batch(queries, seed=9)
        pooled_report = pooled.count_batch(queries, seed=9)
        assert pooled_report.executed_executor in (
            "process",
            "thread-fallback",
            "serial-fallback",
        )
        assert serial_report.estimates() == pooled_report.estimates()

    def test_process_pool_unavailable_falls_back_down_the_ladder(
        self, database, monkeypatch
    ):
        """Sandboxed environments may have no usable multiprocessing start
        method at all; the process back-end must warn and degrade to the
        next executor rung (thread) instead of raising (regression test for
        the get_context preflight + degradation ladder)."""
        import multiprocessing

        from repro.service import executor as executor_module

        def broken_get_context(method=None):
            raise ValueError("cannot find context for 'fork'")

        monkeypatch.setattr(multiprocessing, "get_context", broken_get_context)
        queries = [parse_query(CQ), parse_query(DCQ)]
        serial_report = CountingService(
            database, ServiceConfig(executor="serial")
        ).count_batch(queries, seed=9)
        pooled = CountingService(
            database, ServiceConfig(executor="process", max_workers=2)
        )
        with pytest.warns(RuntimeWarning, match="falling back to thread"):
            pooled_report = pooled.count_batch(queries, seed=9)
        assert pooled_report.executed_executor == "thread-fallback"
        assert pooled_report.estimates() == serial_report.estimates()
        assert any("degrading to thread" in note for note in pooled_report.degradations)
        # The preflight also guards the bare task runner (two tasks: a
        # single-task batch short-circuits to serial before the pool).
        tasks = [
            executor_module.CountTask(
                index=index,
                query=parse_query(CQ),
                scheme="exact",
                engine="indexed",
                epsilon=0.2,
                delta=0.05,
                seed=None,
                database_token=database.structure_token,
            )
            for index in range(2)
        ]
        with pytest.warns(RuntimeWarning, match="process executor unavailable"):
            report = executor_module.run_tasks(
                tasks, {database.structure_token: database}, mode="process"
            )
        assert report.executed_mode == "thread-fallback"
        assert report.outcomes[0].estimate == count_answers_exact(
            parse_query(CQ), database
        )

    def test_request_without_database_needs_a_default(self):
        service = CountingService()
        with pytest.raises(ValueError, match="no default"):
            service.submit(parse_query(CQ))

    def test_stats_reports_both_caches(self, database):
        service = CountingService(database, ServiceConfig(executor="serial"))
        service.submit(parse_query(CQ), seed=1)
        stats = service.stats()
        assert set(stats) == {"caches", "executor", "schemes", "stream", "profiles"}
        assert set(stats["caches"]) == {"plan", "result"}
        assert stats["caches"]["result"]["misses"] == 1
        assert stats["stream"]["subscriptions"] == 0


# ------------------------------------------------------------------ workload
class TestWorkload:
    def test_mixed_workload_covers_all_classes(self):
        queries = mixed_query_workload(8, rng=0)
        classes = {query.query_class().value for query in queries}
        assert classes == {"CQ", "DCQ", "ECQ"}

    def test_workload_database_declares_both_relations(self):
        database = workload_database(num_vertices=8, rng=0)
        assert database.signature.get("E") is not None
        assert database.signature.get("F") is not None

    def test_run_workload_end_to_end(self):
        database = workload_database(num_vertices=8, rng=1)
        queries = mixed_query_workload(6, rng=2)
        service = CountingService(database, ServiceConfig(executor="serial"))
        report = run_workload(service, queries, seed=4)
        assert len(report.batch.results) == 6
        assert sum(report.scheme_counts.values()) == 6
        assert sum(report.class_counts.values()) == 6
        assert report.throughput_qps > 0
        # Every estimate is the exact count (small database => exact scheme).
        for query, result in zip(queries, report.batch.results):
            assert result.count == count_answers_exact(query, database)
