"""Tests for the answer hypergraph H(phi, D) (Definition 24, Observation 25),
the EdgeFree oracles (direct and colour-coding, Lemma 30) and the
Dell–Lapinskas–Meeks estimation framework (Theorem 17)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ColourCodingEdgeFreeOracle,
    DirectEdgeFreeOracle,
    approx_count_via_oracle,
    build_answer_hypergraph,
    exact_count_via_oracle,
    list_edges_via_oracle,
    vertex_classes,
)
from repro.core.colour_coding import required_colouring_repetitions
from repro.core.dlm import OracleCallCounter
from repro.hypergraph import PartiteHypergraph
from repro.queries import parse_query
from repro.queries.builders import path_query, star_query
from repro.relational import Database
from repro.workloads import database_from_graph, erdos_renyi_graph


class TestAnswerHypergraph:
    def test_observation_25_bijection(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y)")
        hypergraph = build_answer_hypergraph(query, triangle_database)
        answers = query.answers(triangle_database)
        assert hypergraph.num_edges() == len(answers)
        for answer in answers:
            edge = [(value, index) for index, value in enumerate(answer)]
            assert hypergraph.has_edge(edge)

    def test_vertex_classes(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        classes = vertex_classes(query, triangle_database)
        assert len(classes) == 2
        assert classes[0] == {(1, 0), (2, 0), (3, 0)}

    def test_uniformity(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        hypergraph = build_answer_hypergraph(query, triangle_database)
        assert isinstance(hypergraph, PartiteHypergraph)
        assert hypergraph.is_uniform(2)


class TestDirectEdgeFreeOracle:
    def test_agrees_with_explicit_hypergraph(self, small_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        explicit = build_answer_hypergraph(query, small_database)
        oracle = DirectEdgeFreeOracle(query, small_database)
        classes = vertex_classes(query, small_database)
        # Full classes.
        assert oracle.edge_free(classes) == explicit.is_edge_free()
        # Several restrictions.
        universe = sorted(small_database.universe, key=repr)
        for i, a in enumerate(universe[:4]):
            for b in universe[:4]:
                subsets = [{(a, 0)}, {(b, 1)}]
                expected = explicit.restrict(subsets).is_edge_free()
                assert oracle.edge_free(subsets) == expected

    def test_empty_subset_is_edge_free(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        oracle = DirectEdgeFreeOracle(query, triangle_database)
        assert oracle.edge_free([set(), {(1, 1)}])

    def test_misaligned_subset_rejected(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        oracle = DirectEdgeFreeOracle(query, triangle_database)
        with pytest.raises(ValueError):
            oracle.edge_free([{(1, 1)}, {(2, 1)}])

    def test_negated_atoms(self):
        database = Database.from_relations(
            {"E": [(1, 2), (2, 1)], "F": [(1, 2)]}, universe=[1, 2]
        )
        query = parse_query("Ans(x, y) :- E(x, y), !F(x, y)")
        oracle = DirectEdgeFreeOracle(query, database)
        assert oracle.edge_free([{(1, 0)}, {(2, 1)}])  # (1,2) is in F
        assert not oracle.edge_free([{(2, 0)}, {(1, 1)}])  # (2,1) is not in F


class TestColourCodingOracle:
    def test_repetition_formula(self):
        assert required_colouring_repetitions(0, 0.1) == 1
        assert required_colouring_repetitions(1, 0.5) == pytest.approx(3, abs=1)
        assert required_colouring_repetitions(2, 0.5) > required_colouring_repetitions(1, 0.5)

    def test_matches_direct_oracle_on_small_instance(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        direct = DirectEdgeFreeOracle(query, triangle_database)
        colour = ColourCodingEdgeFreeOracle(
            query, triangle_database, failure_probability=0.01, rng=0
        )
        for a in triangle_database.universe:
            for b in triangle_database.universe:
                subsets = [{(a, 0)}, {(b, 1)}]
                assert colour.edge_free(subsets) == direct.edge_free(subsets)

    def test_no_disequalities_single_repetition(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        oracle = ColourCodingEdgeFreeOracle(query, triangle_database, rng=0)
        assert oracle.repetitions == 1
        assert not oracle.edge_free([{(1, 0)}, {(2, 1)}])

    def test_truncation_flag(self):
        database = Database.from_graph_edges([(1, 2), (2, 3)])
        query = parse_query(
            "Ans(w, x, y, z) :- E(w, x), E(x, y), E(y, z), w != x, w != y, w != z, "
            "x != y, x != z, y != z"
        )
        oracle = ColourCodingEdgeFreeOracle(
            query, database, failure_probability=0.001, rng=0, max_repetitions=8
        )
        assert oracle.truncated
        assert oracle.repetitions == 8


class TestDLMFramework:
    def _explicit_oracle(self, hypergraph: PartiteHypergraph):
        def oracle(subsets):
            return hypergraph.restrict(subsets).is_edge_free()

        return oracle

    def _random_partite(self, num_per_class, num_classes, num_edges, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        classes = [
            [(f"v{i}", c) for i in range(num_per_class)] for c in range(num_classes)
        ]
        hypergraph = PartiteHypergraph(classes)
        for _ in range(num_edges):
            edge = [classes[c][int(rng.integers(0, num_per_class))] for c in range(num_classes)]
            hypergraph.add_edge(edge)
        return hypergraph

    def test_exact_count_via_oracle(self):
        hypergraph = self._random_partite(6, 2, 12, seed=0)
        count, complete = exact_count_via_oracle(
            hypergraph.classes, self._explicit_oracle(hypergraph)
        )
        assert complete
        assert count == hypergraph.num_edges()

    def test_exact_count_with_cap(self):
        hypergraph = self._random_partite(8, 2, 30, seed=1)
        count, complete = exact_count_via_oracle(
            hypergraph.classes, self._explicit_oracle(hypergraph), cap=5
        )
        assert not complete
        assert count == 5

    def test_list_edges_via_oracle(self):
        hypergraph = self._random_partite(5, 3, 8, seed=2)
        edges = list_edges_via_oracle(hypergraph.classes, self._explicit_oracle(hypergraph))
        assert len(edges) == hypergraph.num_edges()
        for edge in edges:
            assert hypergraph.has_edge(edge)

    def test_empty_hypergraph(self):
        hypergraph = PartiteHypergraph([[(1, 0)], [(2, 1)]])
        count, complete = exact_count_via_oracle(
            hypergraph.classes, self._explicit_oracle(hypergraph)
        )
        assert complete and count == 0
        assert approx_count_via_oracle(
            hypergraph.classes, self._explicit_oracle(hypergraph), 0.3, 0.2, rng=0
        ) == 0.0

    def test_small_counts_are_exact(self):
        hypergraph = self._random_partite(6, 2, 10, seed=3)
        estimate = approx_count_via_oracle(
            hypergraph.classes, self._explicit_oracle(hypergraph), epsilon=0.3, delta=0.1, rng=0
        )
        assert estimate == hypergraph.num_edges()

    def test_large_counts_within_tolerance(self):
        hypergraph = self._random_partite(14, 2, 170, seed=4)
        truth = hypergraph.num_edges()
        estimate = approx_count_via_oracle(
            hypergraph.classes, self._explicit_oracle(hypergraph), epsilon=0.2, delta=0.1, rng=5
        )
        assert abs(estimate - truth) <= 0.45 * truth

    def test_oracle_call_counter(self):
        hypergraph = self._random_partite(5, 2, 6, seed=6)
        counter = OracleCallCounter(self._explicit_oracle(hypergraph))
        exact_count_via_oracle(hypergraph.classes, counter)
        assert counter.calls > 0


@settings(max_examples=15, deadline=None)
@given(
    num_per_class=st.integers(min_value=1, max_value=6),
    num_edges=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=500),
)
def test_exact_oracle_count_matches_truth(num_per_class, num_edges, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    classes = [[(f"a{i}", 0) for i in range(num_per_class)],
               [(f"b{i}", 1) for i in range(num_per_class)]]
    hypergraph = PartiteHypergraph(classes)
    for _ in range(num_edges):
        hypergraph.add_edge(
            [classes[0][int(rng.integers(0, num_per_class))],
             classes[1][int(rng.integers(0, num_per_class))]]
        )

    def oracle(subsets):
        return hypergraph.restrict(subsets).is_edge_free()

    count, complete = exact_count_via_oracle(hypergraph.classes, oracle)
    assert complete
    assert count == hypergraph.num_edges()
