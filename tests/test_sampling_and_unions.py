"""Tests for the Section-6 extensions: approximate uniform sampling of answers
and Karp–Luby counting for unions of queries."""

from __future__ import annotations

import collections

import pytest

from repro.core import count_answers_exact, enumerate_answers_exact
from repro.queries import parse_query
from repro.queries.builders import friends_query, path_query
from repro.relational import Database
from repro.sampling import exact_uniform_answer_sampler, sample_answers
from repro.unions import approx_count_union, exact_count_union
from repro.workloads import database_from_graph, erdos_renyi_graph


class TestExactSampler:
    def test_samples_are_answers(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        samples = exact_uniform_answer_sampler(query, triangle_database, 20, rng=0)
        answers = enumerate_answers_exact(query, triangle_database)
        assert len(samples) == 20
        assert all(sample in answers for sample in samples)

    def test_empty_answer_set(self):
        database = Database.from_relations({"E": [(1, 1)]}, universe=[1, 2])
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        assert exact_uniform_answer_sampler(query, database, 5, rng=0) == []


class TestJVVSampler:
    def test_samples_are_answers_exact_counter(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y)")
        samples = sample_answers(query, triangle_database, num_samples=10, rng=1, exact=True)
        answers = enumerate_answers_exact(query, triangle_database)
        assert len(samples) == 10
        assert all(sample in answers for sample in samples)

    def test_exact_counter_gives_uniformish_distribution(self, triangle_database):
        """With exact counts the JVV sampler is exactly uniform; check that
        every answer is hit over many samples (coupon-collector style)."""
        query = parse_query("Ans(x) :- E(x, y)")
        answers = enumerate_answers_exact(query, triangle_database)
        samples = sample_answers(query, triangle_database, num_samples=60, rng=2, exact=True)
        counts = collections.Counter(samples)
        assert set(counts) == answers
        # Uniform over 3 answers with 60 samples: each should appear often.
        assert min(counts.values()) >= 8

    def test_approximate_counter_path(self, friends_db):
        query = friends_query()
        samples = sample_answers(
            query, friends_db, num_samples=3, epsilon=0.3, delta=0.2, rng=3
        )
        answers = enumerate_answers_exact(query, friends_db)
        assert len(samples) == 3
        assert all(sample in answers for sample in samples)

    def test_no_answers(self):
        database = Database.from_relations({"E": [(1, 1)]}, universe=[1])
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        assert sample_answers(query, database, num_samples=2, rng=4, exact=True) == []


class TestUnions:
    def test_exact_union(self, triangle_database):
        first = parse_query("Ans(x, y) :- E(x, y)")
        second = parse_query("Ans(x, y) :- E(x, z), E(z, y)")
        union = exact_count_union([first, second], triangle_database)
        answers = enumerate_answers_exact(first, triangle_database) | enumerate_answers_exact(
            second, triangle_database
        )
        assert union == len(answers)

    def test_mismatched_arities_rejected(self, triangle_database):
        first = parse_query("Ans(x) :- E(x, y)")
        second = parse_query("Ans(x, y) :- E(x, y)")
        with pytest.raises(ValueError):
            exact_count_union([first, second], triangle_database)
        with pytest.raises(ValueError):
            approx_count_union([first, second], triangle_database)

    def test_empty_query_list_rejected(self, triangle_database):
        with pytest.raises(ValueError):
            exact_count_union([], triangle_database)

    def test_karp_luby_with_exact_components(self, small_database):
        first = parse_query("Ans(x, y) :- E(x, y)")
        second = parse_query("Ans(x, y) :- E(x, z), E(z, y)")
        truth = exact_count_union([first, second], small_database)
        estimate = approx_count_union(
            [first, second],
            small_database,
            epsilon=0.2,
            delta=0.1,
            rng=5,
            exact_components=True,
            num_samples=400,
        )
        assert abs(estimate - truth) <= max(0.3 * truth, 1.0)

    def test_karp_luby_identical_queries(self, triangle_database):
        """The union of a query with itself has the same count as the query."""
        query = parse_query("Ans(x, y) :- E(x, y)")
        truth = count_answers_exact(query, triangle_database)
        estimate = approx_count_union(
            [query, query], triangle_database, epsilon=0.2, delta=0.1, rng=6,
            exact_components=True, num_samples=300,
        )
        assert abs(estimate - truth) <= max(0.3 * truth, 1.0)

    def test_union_of_disjoint_queries(self, triangle_database):
        """Disjoint answer sets: the union is the sum."""
        database = Database.from_relations(
            {"E": [(1, 2), (2, 3)], "F": [(4, 5)]}, universe=[1, 2, 3, 4, 5]
        )
        first = parse_query("Ans(x, y) :- E(x, y)")
        second = parse_query("Ans(x, y) :- F(x, y)")
        truth = exact_count_union([first, second], database)
        assert truth == 3
        estimate = approx_count_union(
            [first, second], database, epsilon=0.2, delta=0.1, rng=7,
            exact_components=True, num_samples=200,
        )
        assert abs(estimate - truth) <= 1.0

    def test_empty_union(self):
        database = Database.from_relations({"E": [(1, 1)]}, universe=[1])
        query = parse_query("Ans(x, y) :- E(x, y), x != y")
        assert approx_count_union([query], database, rng=8, exact_components=True) == 0.0
