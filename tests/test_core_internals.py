"""Additional unit tests for internals of the core package: the oracle
counting plumbing (permutation handling of Lemma 22), the colour-coding
bookkeeping, the FPTRAS/FPRAS result records and the dispatcher edge cases."""

from __future__ import annotations

import math

import pytest

from repro.core.answer_hypergraph import DirectEdgeFreeOracle
from repro.core.oracle_counting import (
    GeneralEdgeFreeOracle,
    OracleCountingStatistics,
    approx_count_answers_via_oracle,
    exact_count_answers_via_oracle,
)
from repro.core import count_answers_exact
from repro.queries import parse_query
from repro.queries.builders import path_query
from repro.relational import Database
from repro.workloads import database_from_graph, erdos_renyi_graph


@pytest.fixture
def two_free_query():
    return parse_query("Ans(x, y) :- E(x, z), E(z, y)")


class TestGeneralEdgeFreeOracle:
    def test_permutation_step_of_lemma_22(self, triangle_database, two_free_query):
        """The general oracle must accept subsets that are *not* aligned with
        the classes U_i(D): it intersects with every class and tries all
        permutations of the parts (proof of Lemma 22)."""
        statistics = OracleCountingStatistics()
        aligned = DirectEdgeFreeOracle(two_free_query, triangle_database)
        general = GeneralEdgeFreeOracle(aligned, 2, statistics)

        # W_1 holds candidates for the *second* free variable and vice versa;
        # only the permuted alignment finds the answers.
        w1 = {(1, 1), (2, 1)}
        w2 = {(1, 0), (2, 0), (3, 0)}
        assert general([w1, w2]) is False  # there is an answer
        assert statistics.edgefree_calls == 1
        assert statistics.aligned_calls >= 1

    def test_mixed_subsets(self, triangle_database, two_free_query):
        statistics = OracleCountingStatistics()
        aligned = DirectEdgeFreeOracle(two_free_query, triangle_database)
        general = GeneralEdgeFreeOracle(aligned, 2, statistics)
        # A subset mixing tags contributes only its per-class parts.
        w1 = {(1, 0), (2, 1)}
        w2 = {(3, 0), (3, 1)}
        result = general([w1, w2])
        assert isinstance(result, bool)

    def test_wrong_number_of_subsets(self, triangle_database, two_free_query):
        statistics = OracleCountingStatistics()
        aligned = DirectEdgeFreeOracle(two_free_query, triangle_database)
        general = GeneralEdgeFreeOracle(aligned, 2, statistics)
        with pytest.raises(ValueError):
            general([{(1, 0)}])

    def test_empty_intersection_means_edge_free(self, triangle_database, two_free_query):
        statistics = OracleCountingStatistics()
        aligned = DirectEdgeFreeOracle(two_free_query, triangle_database)
        general = GeneralEdgeFreeOracle(aligned, 2, statistics)
        # Both subsets tagged for class 0: no permutation gives a non-empty
        # class-1 part, so the restriction is edge-free.
        assert general([{(1, 0)}, {(2, 0)}]) is True


class TestOracleCountingEndToEnd:
    def test_statistics_mode_selection(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y), E(x, z), y != z")
        _, statistics = approx_count_answers_via_oracle(
            query, triangle_database, 0.3, 0.2, rng=0, oracle_mode="direct",
            return_statistics=True,
        )
        assert statistics.oracle_mode == "direct"
        assert statistics.edgefree_calls > 0

    def test_auto_mode_falls_back_for_many_disequalities(self):
        database = database_from_graph(erdos_renyi_graph(5, 0.6, rng=0))
        query = parse_query(
            "Ans(w, x, y, z) :- E(w, x), E(x, y), E(y, z), w != x, w != y, w != z, "
            "x != y, x != z, y != z"
        )
        _, statistics = approx_count_answers_via_oracle(
            query, database, 0.4, 0.2, rng=1, oracle_mode="auto",
            max_colouring_repetitions=16, return_statistics=True,
        )
        assert statistics.oracle_mode == "direct"

    def test_invalid_oracle_mode(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        with pytest.raises(ValueError):
            approx_count_answers_via_oracle(query, triangle_database, 0.3, 0.2, oracle_mode="bogus")
        with pytest.raises(ValueError):
            exact_count_answers_via_oracle(query, triangle_database, oracle_mode="bogus")

    def test_invalid_epsilon_delta(self, triangle_database):
        query = parse_query("Ans(x) :- E(x, y)")
        with pytest.raises(ValueError):
            approx_count_answers_via_oracle(query, triangle_database, 0.0, 0.2)
        with pytest.raises(ValueError):
            approx_count_answers_via_oracle(query, triangle_database, 0.3, 1.0)

    def test_exact_via_oracle_matches_baseline_with_disequalities(self, small_database):
        query = parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y")
        assert exact_count_answers_via_oracle(query, small_database) == (
            count_answers_exact(query, small_database)
        )

    def test_boolean_query_via_oracle(self, triangle_database):
        query = parse_query("Ans() :- E(x, y)")
        assert exact_count_answers_via_oracle(query, triangle_database) == 1

    def test_reproducibility_with_seed(self, small_database):
        query = path_query(2, free_endpoints_only=True)
        first = approx_count_answers_via_oracle(query, small_database, 0.3, 0.2, rng=7)
        second = approx_count_answers_via_oracle(query, small_database, 0.3, 0.2, rng=7)
        assert first == second


class TestDirectOracleCallCounting:
    def test_call_counter_increments(self, triangle_database):
        query = parse_query("Ans(x, y) :- E(x, y)")
        oracle = DirectEdgeFreeOracle(query, triangle_database)
        assert oracle.calls == 0
        oracle.edge_free([{(1, 0)}, {(2, 1)}])
        oracle.edge_free([{(1, 0)}, {(1, 1)}])
        assert oracle.calls == 2
