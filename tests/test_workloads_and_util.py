"""Tests for the workload generators and the shared utilities."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    ApproximationParameters,
    as_generator,
    check_epsilon_delta,
    check_positive_int,
    check_probability,
    median_amplify,
    median_of_means,
    relative_error,
    required_repetitions,
    spawn_generators,
)
from repro.util.rng import random_choice, random_coin, random_subset, shuffled, weighted_choice
from repro.workloads import (
    database_from_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    random_bipartite_graph,
    random_bounded_treewidth_query,
    random_database,
    random_high_arity_database,
    random_path_workload,
    random_star_workload,
    random_tree_query,
)
from repro.decomposition import exact_treewidth
from repro.queries import QueryClass


class TestRNG:
    def test_seed_reproducibility(self):
        first = as_generator(42).random(5)
        second = as_generator(42).random(5)
        assert np.allclose(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_invalid_rng(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")

    def test_spawn_generators_independent(self):
        children = spawn_generators(0, 3)
        assert len(children) == 3
        values = [child.random() for child in children]
        assert len(set(values)) == 3

    def test_random_helpers(self):
        assert random_choice([1, 2, 3], rng=0) in {1, 2, 3}
        assert set(shuffled([1, 2, 3], rng=0)) == {1, 2, 3}
        assert isinstance(random_coin(0.5, rng=0), bool)
        subset = random_subset(range(100), 0.5, rng=0)
        assert 20 <= len(subset) <= 80
        assert weighted_choice(["a", "b"], [0.0, 1.0], rng=0) == "b"
        with pytest.raises(ValueError):
            random_choice([], rng=0)
        with pytest.raises(ValueError):
            weighted_choice(["a"], [0.0], rng=0)


class TestEstimationHelpers:
    def test_approximation_parameters_validation(self):
        with pytest.raises(ValueError):
            ApproximationParameters(epsilon=1.5, delta=0.1)
        with pytest.raises(ValueError):
            ApproximationParameters(epsilon=0.1, delta=0.0)
        params = ApproximationParameters(0.1, 0.2)
        assert params.split_delta(2).delta == pytest.approx(0.1)
        assert params.with_epsilon(0.3).epsilon == 0.3

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert math.isinf(relative_error(1, 0))

    def test_required_repetitions_monotone_in_delta(self):
        assert required_repetitions(0.01) >= required_repetitions(0.2)
        assert required_repetitions(0.1) % 2 == 1

    def test_median_amplify(self):
        values = iter([1.0, 100.0, 1.0, 1.0, 1.0] * 20)
        result = median_amplify(lambda: next(values), delta=0.2)
        assert result == pytest.approx(1.0)

    def test_median_of_means(self):
        samples = [1.0] * 50 + [1000.0]
        assert median_of_means(samples, groups=10) < 200
        with pytest.raises(ValueError):
            median_of_means([], groups=3)

    def test_validation_helpers(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_epsilon_delta(0.0, 0.1)
        assert check_positive_int(3) == 3
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(ValueError):
            check_positive_int(1.5)


class TestGraphWorkloads:
    def test_erdos_renyi_reproducible(self):
        first = erdos_renyi_graph(20, 0.3, rng=1)
        second = erdos_renyi_graph(20, 0.3, rng=1)
        assert set(first.edges()) == set(second.edges())

    def test_grid_graph(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 17

    def test_bipartite(self):
        graph = random_bipartite_graph(5, 5, 0.5, rng=2)
        left = set(range(5))
        for u, v in graph.edges():
            assert (u in left) != (v in left)

    def test_power_law_graph_connected_core(self):
        graph = power_law_graph(30, edges_per_vertex=2, rng=3)
        assert graph.number_of_nodes() == 30
        assert graph.number_of_edges() >= 29


class TestDatabaseWorkloads:
    def test_database_from_graph_symmetric(self):
        graph = nx.path_graph(3)
        database = database_from_graph(graph)
        assert database.has_fact("E", (0, 1)) and database.has_fact("E", (1, 0))
        assert len(database.universe) == 3

    def test_random_database_shapes(self):
        database = random_database(10, {"R": 3, "S": 2}, facts_per_relation=20, rng=4)
        assert database.signature["R"].arity == 3
        assert len(database.relation("R")) <= 20
        assert all(len(fact) == 2 for fact in database.relation("S"))

    def test_random_high_arity_database(self):
        database = random_high_arity_database(
            8, ["R0", "R1"], arity=4, facts_per_relation=15, rng=5
        )
        assert database.arity() == 4
        assert len(database.relation("R0")) > 0


class TestQueryWorkloads:
    def test_random_tree_query_treewidth_one(self):
        query = random_tree_query(6, num_free=3, rng=6)
        assert exact_treewidth(query.hypergraph()) == 1
        assert query.num_free() == 3

    def test_random_tree_query_with_extensions(self):
        query = random_tree_query(5, num_disequalities=2, num_negations=1, rng=7)
        assert query.query_class() is QueryClass.ECQ
        assert len(query.disequalities) == 2

    def test_random_bounded_treewidth_query(self):
        query = random_bounded_treewidth_query(8, treewidth=2, rng=8)
        assert exact_treewidth(query.hypergraph()) <= 2

    def test_path_and_star_workloads(self):
        paths = random_path_workload([1, 2, 3])
        assert [len(q.atoms) for q in paths] == [1, 2, 3]
        stars = random_star_workload([2, 3], with_disequalities=True)
        assert all(q.query_class() is QueryClass.DCQ for q in stars)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_tree_query(1)
        with pytest.raises(ValueError):
            random_bounded_treewidth_query(2, treewidth=3)


@settings(max_examples=20, deadline=None)
@given(
    num_variables=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=300),
)
def test_random_tree_queries_always_have_treewidth_one(num_variables, seed):
    query = random_tree_query(num_variables, rng=seed)
    assert exact_treewidth(query.hypergraph()) <= 1
